// Fault-tolerance tests for the distributed sweep dispatcher
// (core/dispatch): byte-identity of dispatched results against local
// execution, crash retry and work stealing after a SIGKILLed worker,
// duplicate-record handling on steal races, graceful degradation after
// --max-retries, lease expiry on wedged workers, and checkpoint resume.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/dispatch/dispatch.hpp"
#include "core/dispatch/protocol.hpp"
#include "core/dispatch/transport.hpp"
#include "core/safe_io.hpp"
#include "core/sweep.hpp"
#include "core/sweep_plan.hpp"
#include "core/sweep_shard.hpp"
#include "expect_error.hpp"
#include "sim/error.hpp"
#include "workload/micro.hpp"

namespace paratick::core {
namespace {

SweepConfig tiny_sweep(int repeat = 2) {
  SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(2);
  cfg.base.vcpus = 2;
  cfg.base.max_duration = sim::SimTime::ms(50);
  cfg.base.stop_when_done = false;
  cfg.modes = {guest::TickMode::kDynticksIdle, guest::TickMode::kParatick};
  cfg.repeat = repeat;
  cfg.root_seed = 77;
  cfg.threads = 1;
  for (const char* name : {"idle", "storm"}) {
    const bool storm = std::string(name) == "storm";
    cfg.variants.push_back({name, [storm](ExperimentSpec& exp) {
      if (!storm) return;
      exp.setup = [](guest::GuestKernel& k) {
        workload::SyncStormSpec spec;
        spec.threads = 2;
        spec.sync_rate_hz = 400.0;
        spec.duration = sim::SimTime::ms(50);
        spec.load = 0.3;
        workload::install_sync_storm(k, spec);
      };
    }});
  }
  return cfg;
}

dispatch::DispatchOptions fast_opts(unsigned workers) {
  dispatch::DispatchOptions opts;
  opts.workers = workers;
  opts.retry_backoff_sec = 0.01;  // tests should not sit out real backoffs
  return opts;
}

// ---- protocol -------------------------------------------------------------

TEST(DispatchSlice, CodecRoundTripsAndRejectsGarbage) {
  const std::vector<std::size_t> indices = {0, 1, 2, 3, 7, 9, 10, 11, 20};
  EXPECT_EQ(dispatch::encode_slice(indices), "0-3,7,9-11,20");
  EXPECT_EQ(dispatch::decode_slice("0-3,7,9-11,20"), indices);
  EXPECT_EQ(dispatch::decode_slice("5"), (std::vector<std::size_t>{5}));
  EXPECT_EQ(dispatch::encode_slice({}), "");
  EXPECT_SIM_ERROR((void)dispatch::decode_slice(""), "slice spec");
  EXPECT_SIM_ERROR((void)dispatch::decode_slice("3-1"), "bad range");
  EXPECT_SIM_ERROR((void)dispatch::decode_slice("1,,2"), "slice spec");
  EXPECT_SIM_ERROR((void)dispatch::decode_slice("1,"), "trailing");
}

TEST(DispatchPlan, HeaderRoundTripsAndDetectsSkew) {
  SweepConfig cfg = tiny_sweep();
  cfg.bench_name = "test_bench";
  const dispatch::PlanInfo plan = dispatch::plan_info_for(cfg);
  EXPECT_EQ(plan.total_runs, 8u);
  EXPECT_EQ(plan.cells.size(), 4u);

  const dispatch::PlanInfo parsed =
      dispatch::parse_plan_info(dispatch::to_json(plan));
  std::string why;
  EXPECT_TRUE(dispatch::plans_match(plan, parsed, &why)) << why;
  EXPECT_EQ(parsed.bench, "test_bench");
  EXPECT_EQ(parsed.root_seed, 77u);

  // A fleet host running skewed flags must be detected field by field.
  dispatch::PlanInfo skewed = plan;
  skewed.root_seed = 78;
  EXPECT_FALSE(dispatch::plans_match(plan, skewed, &why));
  EXPECT_NE(why.find("root seed"), std::string::npos);
  skewed = plan;
  skewed.cells[1].vcpus = 99;
  EXPECT_FALSE(dispatch::plans_match(plan, skewed, &why));
  EXPECT_NE(why.find("cell 1"), std::string::npos);
}

// ---- byte-identity --------------------------------------------------------

TEST(Dispatch, ForkWorkersMatchLocalRunByteForByte) {
  const SweepResult reference = SweepRunner(tiny_sweep()).run();

  auto transport =
      std::make_unique<dispatch::ForkWorkerTransport>(tiny_sweep());
  dispatch::SweepDispatcher d(std::move(transport), fast_opts(3));
  const SweepResult res = d.run();

  EXPECT_EQ(res.to_csv(), reference.to_csv());
  EXPECT_EQ(res.to_json(), reference.to_json());
  EXPECT_EQ(d.stats().records_received, reference.runs.size());
  EXPECT_EQ(d.stats().runs_degraded, 0u);
}

/// Fork workers that pause between records. tiny_sweep runs finish in
/// microseconds — an unpaced worker drains its whole slice into the pipe
/// buffer and exits before any mid-slice SIGKILL can land, so fault
/// injection needs workers that are still alive when the coordinator
/// reacts to their records.
class PacedTransport final : public dispatch::WorkerTransport {
 public:
  explicit PacedTransport(SweepConfig cfg) : cfg_(std::move(cfg)) {
    cfg_.progress = false;
  }
  const char* name() const override { return "paced"; }
  dispatch::PlanInfo plan() override { return dispatch::plan_info_for(cfg_); }
  dispatch::WorkerProcess launch(
      const std::vector<std::size_t>& indices) override {
    int fds[2];
    EXPECT_EQ(::pipe(fds), 0);
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::close(fds[0]);
      const SweepPlan plan = SweepPlan::make(cfg_);
      const auto put = [&](const std::string& s) {
        if (!write_all(fds[1], s.data(), s.size())) std::_Exit(1);
      };
      put("#plan " + dispatch::to_json(dispatch::plan_info_for(cfg_)) + "\n");
      for (const std::size_t idx : indices) {
        put("#run " + std::to_string(idx) + "\n");
        put(run_record_to_json(plan.execute(idx)) + "\n");
        ::usleep(30'000);  // window for the coordinator to kill us mid-slice
      }
      put("#end\n");
      std::_Exit(0);
    }
    ::close(fds[1]);
    return {pid, fds[0], -1};
  }

 private:
  SweepConfig cfg_;
};

TEST(Dispatch, WorkerKilledMidSliceRetriesAndStaysByteIdentical) {
  const SweepResult reference = SweepRunner(tiny_sweep()).run();

  dispatch::DispatchOptions opts = fast_opts(2);
  opts.test_kill_after = 3;  // SIGKILL the worker that delivers record 3
  dispatch::SweepDispatcher d(std::make_unique<PacedTransport>(tiny_sweep()),
                              std::move(opts));
  const SweepResult res = d.run();

  EXPECT_GE(d.stats().workers_died, 1u);
  EXPECT_EQ(d.stats().runs_degraded, 0u);
  // The killed worker's tail was re-enqueued (and possibly stolen); the
  // merged artifacts must not betray any of it.
  EXPECT_EQ(res.to_csv(), reference.to_csv());
  EXPECT_EQ(res.to_json(), reference.to_json());
}

// ---- duplicate records (steal races) --------------------------------------

/// Workers that emit every record twice: the deterministic stand-in for a
/// steal race where victim and thief both execute the contested index.
class EchoTwiceTransport final : public dispatch::WorkerTransport {
 public:
  explicit EchoTwiceTransport(SweepConfig cfg) : cfg_(std::move(cfg)) {
    cfg_.progress = false;
  }
  const char* name() const override { return "echo-twice"; }
  dispatch::PlanInfo plan() override { return dispatch::plan_info_for(cfg_); }
  dispatch::WorkerProcess launch(
      const std::vector<std::size_t>& indices) override {
    int fds[2];
    EXPECT_EQ(::pipe(fds), 0);
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::close(fds[0]);
      const SweepPlan plan = SweepPlan::make(cfg_);
      const auto put = [&](const std::string& s) {
        if (!write_all(fds[1], s.data(), s.size())) std::_Exit(1);
      };
      put("#plan " + dispatch::to_json(dispatch::plan_info_for(cfg_)) + "\n");
      for (const std::size_t idx : indices) {
        put("#run " + std::to_string(idx) + "\n");
        const std::string rec = run_record_to_json(plan.execute(idx)) + "\n";
        put(rec);
        put(rec);
      }
      put("#end\n");
      std::_Exit(0);
    }
    ::close(fds[1]);
    return {pid, fds[0], -1};
  }

 private:
  SweepConfig cfg_;
};

TEST(Dispatch, DuplicateRecordsKeepFirstAndStayByteIdentical) {
  const SweepResult reference = SweepRunner(tiny_sweep()).run();

  dispatch::SweepDispatcher d(
      std::make_unique<EchoTwiceTransport>(tiny_sweep()), fast_opts(2));
  const SweepResult res = d.run();

  // Identical records: last-write-wins and keep-first are the same
  // verdict, and the duplicates must be invisible in the artifacts.
  // The dispatcher stops reading the moment the last run completes, so a
  // duplicate still sitting in a pipe at shutdown is dropped unread — the
  // counter may legitimately run one short of the run count.
  EXPECT_GE(d.stats().duplicate_records + 1, reference.runs.size());
  EXPECT_LE(d.stats().duplicate_records, reference.runs.size());
  EXPECT_EQ(res.to_csv(), reference.to_csv());
  EXPECT_EQ(res.to_json(), reference.to_json());
}

// ---- graceful degradation -------------------------------------------------

/// Workers that announce their first run and then die on a signal —
/// every attempt, forever. Nothing ever completes.
class AlwaysCrashTransport final : public dispatch::WorkerTransport {
 public:
  explicit AlwaysCrashTransport(SweepConfig cfg) : cfg_(std::move(cfg)) {}
  const char* name() const override { return "always-crash"; }
  dispatch::PlanInfo plan() override { return dispatch::plan_info_for(cfg_); }
  dispatch::WorkerProcess launch(
      const std::vector<std::size_t>& indices) override {
    int fds[2];
    EXPECT_EQ(::pipe(fds), 0);
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::close(fds[0]);
      const std::string head =
          "#plan " + dispatch::to_json(dispatch::plan_info_for(cfg_)) +
          "\n#run " + std::to_string(indices.front()) + "\n";
      (void)write_all(fds[1], head.data(), head.size());
      std::_Exit(1);  // crashed mid-run, as far as the coordinator knows
    }
    ::close(fds[1]);
    return {pid, fds[0], -1};
  }

 private:
  SweepConfig cfg_;
};

TEST(Dispatch, RetriesExhaustedDegradeCellsInsteadOfFailing) {
  SweepConfig cfg = tiny_sweep(1);  // 4 runs: keeps the crash loop short
  dispatch::DispatchOptions opts = fast_opts(2);
  opts.max_retries = 1;
  std::size_t bundles = 0;
  opts.bundle_writer = [&bundles](SweepRun& run) {
    run.bundle_path = "synth" + std::to_string(run.run_index) + ".json";
    ++bundles;
  };

  dispatch::SweepDispatcher d(std::make_unique<AlwaysCrashTransport>(cfg),
                              std::move(opts));
  const SweepResult res = d.run();  // completes; does NOT throw

  EXPECT_EQ(d.stats().runs_degraded, res.runs.size());
  EXPECT_EQ(bundles, res.runs.size());
  EXPECT_EQ(res.degraded_cell_count(), res.cells.size());
  for (const SweepRun& run : res.runs) {
    EXPECT_TRUE(run.executed);
    EXPECT_FALSE(run.ok);
    ASSERT_TRUE(run.failure.has_value());
    EXPECT_EQ(run.failure->kind, RunFailure::Kind::kCrash);
    EXPECT_NE(run.failure->message.find("abandoned"), std::string::npos);
    EXPECT_FALSE(run.bundle_path.empty());
    // Identity survives even though no worker ever reported the run.
    EXPECT_EQ(run.seed, derive_seed(77, run.run_index));
  }
}

// ---- lease expiry ---------------------------------------------------------

/// First worker wedges after its plan header (no heartbeat, no records);
/// all later launches are normal fork workers.
class WedgeFirstTransport final : public dispatch::WorkerTransport {
 public:
  explicit WedgeFirstTransport(SweepConfig cfg)
      : inner_(cfg), cfg_(std::move(cfg)) {}
  const char* name() const override { return "wedge-first"; }
  dispatch::PlanInfo plan() override { return dispatch::plan_info_for(cfg_); }
  dispatch::WorkerProcess launch(
      const std::vector<std::size_t>& indices) override {
    if (!wedged_once_) {
      wedged_once_ = true;
      int fds[2];
      EXPECT_EQ(::pipe(fds), 0);
      const pid_t pid = ::fork();
      if (pid == 0) {
        ::close(fds[0]);
        const std::string head =
            "#plan " + dispatch::to_json(dispatch::plan_info_for(cfg_)) + "\n";
        (void)write_all(fds[1], head.data(), head.size());
        for (;;) ::pause();  // wedged: only the coordinator's lease saves us
      }
      ::close(fds[1]);
      return {pid, fds[0], -1};
    }
    return inner_.launch(indices);
  }

 private:
  dispatch::ForkWorkerTransport inner_;
  SweepConfig cfg_;
  bool wedged_once_ = false;
};

TEST(Dispatch, LeaseExpiryReassignsWedgedWorkersSlice) {
  const SweepResult reference = SweepRunner(tiny_sweep()).run();

  dispatch::DispatchOptions opts = fast_opts(2);
  opts.lease_sec = 0.3;
  dispatch::SweepDispatcher d(
      std::make_unique<WedgeFirstTransport>(tiny_sweep()), std::move(opts));
  const SweepResult res = d.run();

  EXPECT_EQ(d.stats().leases_expired, 1u);
  EXPECT_GE(d.stats().workers_died, 1u);
  EXPECT_EQ(d.stats().runs_degraded, 0u);
  EXPECT_EQ(res.to_csv(), reference.to_csv());
  EXPECT_EQ(res.to_json(), reference.to_json());
}

// ---- checkpoint resume ----------------------------------------------------

TEST(Dispatch, CheckpointResumeSkipsCompletedRuns) {
  const std::string dir = ::testing::TempDir() + "dispatch_ckpt";
  std::filesystem::remove_all(dir);
  const std::string ckpt = dir + "/checkpoint.json";
  const SweepResult reference = SweepRunner(tiny_sweep()).run();

  {
    dispatch::DispatchOptions opts = fast_opts(2);
    opts.checkpoint_path = ckpt;
    dispatch::SweepDispatcher d(
        std::make_unique<dispatch::ForkWorkerTransport>(tiny_sweep()),
        std::move(opts));
    const SweepResult res = d.run();
    EXPECT_EQ(res.to_csv(), reference.to_csv());
  }
  ASSERT_TRUE(std::filesystem::exists(ckpt));

  // A fresh dispatcher sees the finished checkpoint: nothing re-executes.
  dispatch::DispatchOptions opts = fast_opts(2);
  opts.checkpoint_path = ckpt;
  dispatch::SweepDispatcher d(
      std::make_unique<dispatch::ForkWorkerTransport>(tiny_sweep()),
      std::move(opts));
  const SweepResult res = d.run();
  EXPECT_EQ(d.stats().runs_resumed, reference.runs.size());
  EXPECT_EQ(d.stats().workers_launched, 0u);
  EXPECT_EQ(res.to_csv(), reference.to_csv());
  EXPECT_EQ(res.to_json(), reference.to_json());

  // A checkpoint from a different sweep is refused, not merged.
  SweepConfig other = tiny_sweep();
  other.root_seed = 78;
  dispatch::DispatchOptions opts2 = fast_opts(2);
  opts2.checkpoint_path = ckpt;
  dispatch::SweepDispatcher d2(
      std::make_unique<dispatch::ForkWorkerTransport>(other),
      std::move(opts2));
  const SweepResult res2 = d2.run();
  EXPECT_EQ(d2.stats().runs_resumed, 0u);
  EXPECT_GE(d2.stats().workers_launched, 1u);
  std::filesystem::remove_all(dir);
}

// ---- transport sanity -----------------------------------------------------

TEST(Dispatch, BrokenWorkerCommandFailsFastInsteadOfBurningRetries) {
  const std::vector<std::string> cmd = {"/nonexistent/not_a_bench"};
  auto transport = std::make_unique<dispatch::CommandWorkerTransport>(cmd);
  EXPECT_SIM_ERROR((void)transport->plan(), "#plan");
}

TEST(Dispatch, DispatcherRejectsPlanSkewedWorkers) {
  // Transport whose #plan probe says one thing but whose workers run
  // another sweep: the first worker header must abort the dispatch.
  class SkewTransport final : public dispatch::WorkerTransport {
   public:
    explicit SkewTransport(SweepConfig cfg) : inner_(cfg) {
      lie_ = dispatch::plan_info_for(cfg);
      lie_.root_seed ^= 1;  // coordinator believes a different seed
    }
    const char* name() const override { return "skew"; }
    dispatch::PlanInfo plan() override { return lie_; }
    dispatch::WorkerProcess launch(
        const std::vector<std::size_t>& indices) override {
      return inner_.launch(indices);
    }

   private:
    dispatch::ForkWorkerTransport inner_;
    dispatch::PlanInfo lie_;
  };

  dispatch::SweepDispatcher d(std::make_unique<SkewTransport>(tiny_sweep()),
                              fast_opts(1));
  EXPECT_SIM_ERROR((void)d.run(), "disagrees with the coordinator");
}

// ---- --skip-corrupt merge degradation -------------------------------------

TEST(DispatchMerge, SkipCorruptDegradesLostShardInsteadOfAborting) {
  const std::string dir = ::testing::TempDir() + "dispatch_skip_corrupt";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::vector<PartialSnapshot> both;
  for (unsigned k = 0; k < 2; ++k) {
    SweepConfig cfg = tiny_sweep();
    cfg.shard = ShardSpec{k, 2};
    cfg.output_dir = dir;
    cfg.partial_path = "shard" + std::to_string(k) + ".json";
    (void)SweepRunner(std::move(cfg)).run();
    both.push_back(
        load_partial_snapshot(dir + "/shard" + std::to_string(k) + ".json"));
  }

  // Reference: both shards merge cleanly.
  const SweepResult full = merge_partial_snapshots(both);
  EXPECT_EQ(full.degraded_cell_count(), 0u);

  // Shard 1's file is lost. Without allow_missing the merge aborts with an
  // actionable message; with it, the missing runs become crash records.
  const std::vector<PartialSnapshot> only0 = {both[0]};
  EXPECT_SIM_ERROR((void)merge_partial_snapshots(only0),
                   "covered by no partial");
  const SweepResult degraded =
      merge_partial_snapshots(only0, /*allow_missing=*/true);
  EXPECT_EQ(degraded.runs.size(), full.runs.size());
  EXPECT_EQ(degraded.degraded_cell_count(), degraded.cells.size());
  for (const SweepRun& run : degraded.runs) {
    EXPECT_TRUE(run.executed);
    if (run.run_index % 2 == 1) {  // shard 1's round-robin slice
      ASSERT_TRUE(run.failure.has_value());
      EXPECT_EQ(run.failure->kind, RunFailure::Kind::kCrash);
      EXPECT_EQ(run.seed, derive_seed(77, run.run_index));
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(DispatchMerge, CorruptPartialErrorNamesFileAndByteOffset) {
  const std::string dir = ::testing::TempDir() + "dispatch_corrupt_offset";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  SweepConfig cfg = tiny_sweep(1);
  cfg.shard = ShardSpec{0, 2};
  cfg.output_dir = dir;
  cfg.partial_path = "partial.json";
  (void)SweepRunner(std::move(cfg)).run();
  const std::string path = dir + "/partial.json";
  ASSERT_TRUE(std::filesystem::exists(path));

  // Tear the file mid-document, as a crashed non-atomic writer would.
  std::string text;
  {
    std::ifstream in(path);
    text.assign(std::istreambuf_iterator<char>(in), {});
  }
  {
    std::ofstream out(path, std::ios::trunc);
    out << text.substr(0, text.size() / 2);
  }
  try {
    (void)load_partial_snapshot(path);
    FAIL() << "expected SimError";
  } catch (const sim::SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
    EXPECT_NE(msg.find("byte offset"), std::string::npos) << msg;
    EXPECT_NE(msg.find("regenerate"), std::string::npos) << msg;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace paratick::core
