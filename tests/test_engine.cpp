#include <gtest/gtest.h>

#include "expect_error.hpp"

#include <chrono>
#include <thread>
#include <vector>

#include "sim/engine.hpp"

namespace paratick::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), SimTime::zero());
  EXPECT_FALSE(e.has_pending_events());
}

TEST(Engine, ClockAdvancesToEventTime) {
  Engine e;
  SimTime seen;
  e.schedule_at(SimTime::us(7), [&] { seen = e.now(); });
  e.run();
  EXPECT_EQ(seen, SimTime::us(7));
  EXPECT_EQ(e.now(), SimTime::us(7));
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine e;
  std::vector<SimTime> seen;
  e.schedule_after(SimTime::us(1), [&] {
    seen.push_back(e.now());
    e.schedule_after(SimTime::us(2), [&] { seen.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], SimTime::us(1));
  EXPECT_EQ(seen[1], SimTime::us(3));
}

TEST(Engine, RunUntilExecutesEventsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_at(SimTime::us(10), [&] { ++fired; });
  e.schedule_at(SimTime::us(11), [&] { ++fired; });
  e.run_until(SimTime::us(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), SimTime::us(10));
  EXPECT_TRUE(e.has_pending_events());
}

TEST(Engine, RunUntilAdvancesClockWhenQueueDrains) {
  Engine e;
  e.schedule_at(SimTime::us(1), [] {});
  e.run_until(SimTime::ms(5));
  EXPECT_EQ(e.now(), SimTime::ms(5));
}

TEST(Engine, StopLeavesClockAtStoppingEvent) {
  Engine e;
  e.schedule_at(SimTime::us(2), [&] { e.stop(); });
  e.schedule_at(SimTime::us(9), [] {});
  e.run_until(SimTime::ms(1));
  EXPECT_EQ(e.now(), SimTime::us(2));
  EXPECT_TRUE(e.has_pending_events());
}

TEST(Engine, StepExecutesExactlyOne) {
  Engine e;
  int fired = 0;
  e.schedule_at(SimTime::us(1), [&] { ++fired; });
  e.schedule_at(SimTime::us(2), [&] { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.step());
}

TEST(Engine, CancelPendingEvent) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_after(SimTime::us(5), [&] { fired = true; });
  EXPECT_TRUE(e.pending(id));
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, EventsExecutedCounter) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(SimTime::ns(i), [] {});
  e.run();
  EXPECT_EQ(e.events_executed(), 5u);
}

TEST(Engine, CascadingEventsRunInOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(SimTime::ns(10), [&] {
    order.push_back(1);
    e.schedule_at(SimTime::ns(10), [&] { order.push_back(2); });  // same time
    e.schedule_after(SimTime::ns(5), [&] { order.push_back(3); });
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, RunBeforeExecutesStrictlyBeforeBound) {
  // The parallel engine's lookahead window [W, W+L) leans on this exact
  // contract: an event AT the bound belongs to the next window.
  Engine e;
  std::vector<int> fired;
  e.schedule_at(SimTime::us(1), [&] { fired.push_back(1); });
  e.schedule_at(SimTime::us(5), [&] { fired.push_back(5); });
  e.schedule_at(SimTime::us(5), [&] { fired.push_back(5); });
  e.schedule_at(SimTime::us(6), [&] { fired.push_back(6); });
  e.run_before(SimTime::us(5));
  EXPECT_EQ(fired, (std::vector<int>{1}));
  // Unlike run_until, the clock stays at the last executed event — the
  // caller decides where the window boundary lands via advance_to().
  EXPECT_EQ(e.now(), SimTime::us(1));
  EXPECT_TRUE(e.has_pending_events());
  e.run_before(SimTime::us(7));
  EXPECT_EQ(fired, (std::vector<int>{1, 5, 5, 6}));
}

TEST(Engine, AdvanceToMovesClockWithoutExecuting) {
  Engine e;
  e.advance_to(SimTime::us(3));
  EXPECT_EQ(e.now(), SimTime::us(3));
  EXPECT_EQ(e.events_executed(), 0u);
  EXPECT_SIM_ERROR(e.advance_to(SimTime::us(2)),
                   "would move the clock backwards");
  bool fired = false;
  e.schedule_at(SimTime::us(10), [&] { fired = true; });
  EXPECT_SIM_ERROR(e.advance_to(SimTime::us(11)),
                   "would skip over pending events");
  // Advancing exactly onto a pending event is legal: the event has not
  // been skipped, it is simply next in line.
  e.advance_to(SimTime::us(10));
  EXPECT_EQ(e.now(), SimTime::us(10));
  EXPECT_FALSE(fired);
  e.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, WallLimitAnchorsAtRunStartNotSetTime) {
  // Regression: the deadline used to be stamped inside set_wall_limit(),
  // so host time spent *preparing* a run (building machines, loading
  // traces) silently ate the budget. The budget now arms when execution
  // begins.
  Engine e;
  e.set_wall_limit(0.05);  // 50 ms — far more than one event needs
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  bool fired = false;
  e.schedule_at(SimTime::us(1), [&] { fired = true; });
  EXPECT_NO_THROW(e.run());  // would be kTimeout with the old anchoring
  EXPECT_TRUE(fired);
}

TEST(Engine, WallLimitZeroDisables) {
  Engine e;
  e.set_wall_limit(0.001);
  e.set_wall_limit(0.0);  // <= 0 clears the limit entirely
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  for (int i = 0; i < 2000; ++i) e.schedule_at(SimTime::ns(i), [] {});
  EXPECT_NO_THROW(e.run());
  EXPECT_EQ(e.events_executed(), 2000u);
}

TEST(EngineDeath, SchedulingInThePastAborts) {
  Engine e;
  e.schedule_at(SimTime::us(5), [] {});
  e.run();
  EXPECT_SIM_ERROR(e.schedule_at(SimTime::us(1), [] {}), "past");
}

TEST(EngineDeath, NegativeDelayAborts) {
  Engine e;
  EXPECT_SIM_ERROR(e.schedule_after(SimTime::ns(-1), [] {}), "negative delay");
}

}  // namespace
}  // namespace paratick::sim
