#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace paratick::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::ns(30), [&] { order.push_back(3); });
  q.schedule(SimTime::ns(10), [&] { order.push_back(1); });
  q.schedule(SimTime::ns(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesPopFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime::ns(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(SimTime::ns(10), [&] { fired = true; });
  EXPECT_TRUE(q.pending(id));
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.pending(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(SimTime::ns(10), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdIsSafe) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
}

TEST(EventQueue, CancelledHeadSkippedByNextTime) {
  EventQueue q;
  const EventId first = q.schedule(SimTime::ns(10), [] {});
  q.schedule(SimTime::ns(20), [] {});
  q.cancel(first);
  EXPECT_EQ(q.next_time(), SimTime::ns(20));
}

TEST(EventQueue, PopSkipsCancelled) {
  EventQueue q;
  std::vector<int> order;
  const EventId a = q.schedule(SimTime::ns(1), [&] { order.push_back(1); });
  q.schedule(SimTime::ns(2), [&] { order.push_back(2); });
  q.cancel(a);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, CountersTrackActivity) {
  EventQueue q;
  const EventId a = q.schedule(SimTime::ns(1), [] {});
  q.schedule(SimTime::ns(2), [] {});
  q.cancel(a);
  EXPECT_EQ(q.scheduled_count(), 2u);
  EXPECT_EQ(q.cancelled_count(), 1u);
}

TEST(EventQueue, SizeReflectsLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(SimTime::ns(1), [] {});
  q.schedule(SimTime::ns(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, HeapCompactsWhenDeadEntriesDominate) {
  // Regression: lazy deletion left every cancelled entry in the heap until
  // popped; under timer-heavy workloads (dynticks reprogramming on every
  // idle transition) the heap grew far beyond size(). The queue must now
  // reclaim dead entries once they exceed half the heap.
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(q.schedule(SimTime::ns(i + 1), [] {}));
  }
  for (int i = 0; i < 9900; ++i) q.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(q.size(), 100u);
  // Invariant: dead weight never exceeds live entries (plus the small
  // compaction floor below which reclaiming is not worth it).
  EXPECT_LE(q.heap_entries(), 2 * q.size() + 64);
}

TEST(EventQueue, RepeatedReprogrammingStaysBounded) {
  // The dynticks pattern: schedule a deadline, cancel it, schedule the next.
  EventQueue q;
  EventId pending = q.schedule(SimTime::ns(1), [] {});
  for (int i = 2; i < 50000; ++i) {
    EXPECT_TRUE(q.cancel(pending));
    pending = q.schedule(SimTime::ns(i), [] {});
    ASSERT_LE(q.heap_entries(), 2 * q.size() + 64);
  }
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CompactionPreservesPopOrder) {
  EventQueue q;
  std::vector<EventId> doomed;
  std::vector<int> order;
  for (int i = 0; i < 500; ++i) {
    // Interleave survivors (record i) with victims at shuffled times.
    q.schedule(SimTime::ns(1000 + i), [&order, i] { order.push_back(i); });
    doomed.push_back(q.schedule(SimTime::ns(5000 - i), [] {}));
  }
  for (const EventId id : doomed) q.cancel(id);  // triggers compaction
  int expected = 0;
  while (!q.empty()) q.pop().fn();
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], expected++);
  }
  EXPECT_EQ(expected, 500);
}

TEST(EventQueue, CancelAllThenReuse) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) ids.push_back(q.schedule(SimTime::ns(i + 1), [] {}));
  for (const EventId id : ids) q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_LE(q.heap_entries(), 64u);
  bool fired = false;
  q.schedule(SimTime::ns(7), [&] { fired = true; });
  EXPECT_EQ(q.next_time(), SimTime::ns(7));
  q.pop().fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, StressOrderingRandomTimes) {
  EventQueue q;
  std::vector<std::int64_t> times;
  std::uint64_t x = 12345;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const auto t = static_cast<std::int64_t>(x % 1000);
    q.schedule(SimTime::ns(t), [] {});
  }
  SimTime last = SimTime::zero();
  while (!q.empty()) {
    auto [when, seq, fn] = q.pop();
    EXPECT_GE(when, last);
    last = when;
  }
}

TEST(EventQueue, StaleIdAfterSlotReuseIsRejected) {
  // ABA guard: a slot freed by pop/cancel is reused for new events with a
  // bumped generation, so an old EventId pointing at the same slot must
  // neither read as pending nor cancel the new occupant.
  EventQueue q;
  const EventId old_id = q.schedule(SimTime::ns(1), [] {});
  EXPECT_TRUE(q.cancel(old_id));

  // The freed slot is recycled (LIFO free list) by the very next schedule.
  bool fired = false;
  const EventId new_id = q.schedule(SimTime::ns(2), [&] { fired = true; });
  EXPECT_NE(old_id, new_id);

  EXPECT_FALSE(q.pending(old_id));
  EXPECT_TRUE(q.pending(new_id));
  EXPECT_FALSE(q.cancel(old_id));  // must not kill the new occupant
  EXPECT_TRUE(q.pending(new_id));

  q.pop().fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, ManyGenerationsOfReuseStayDistinct) {
  // Drive one slot through many retire/reuse cycles: every retired id must
  // stay dead, and the live one must stay cancellable, at each generation.
  EventQueue q;
  std::vector<EventId> retired;
  EventId live = q.schedule(SimTime::ns(1), [] {});
  for (int gen = 0; gen < 1000; ++gen) {
    EXPECT_TRUE(q.cancel(live));
    retired.push_back(live);
    live = q.schedule(SimTime::ns(gen + 2), [] {});
    EXPECT_EQ(q.size(), 1u);
  }
  for (const EventId id : retired) {
    EXPECT_FALSE(q.pending(id));
    EXPECT_FALSE(q.cancel(id));
  }
  EXPECT_TRUE(q.pending(live));
}

TEST(EventQueue, EqualTimesStayFifoAcrossSlotReuse) {
  // Regression for the slot-map rewrite: FIFO order at equal timestamps
  // must come from the global schedule sequence, not from slot indices —
  // recycled (lower-index) slots must not jump ahead of older events.
  EventQueue q;
  std::vector<int> order;
  // Occupy low slots, then free them so later schedules reuse them.
  std::vector<EventId> doomed;
  for (int i = 0; i < 8; ++i) doomed.push_back(q.schedule(SimTime::ns(1), [] {}));
  q.schedule(SimTime::ns(5), [&order] { order.push_back(0); });  // slot 8
  for (const EventId id : doomed) q.cancel(id);
  // These land in recycled slots 0..7 but were scheduled later.
  for (int i = 1; i <= 8; ++i) {
    q.schedule(SimTime::ns(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(order.size(), 9u);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ProfileCountersTrackSpillsAndOccupancy) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(q.schedule(SimTime::ns(i + 1), [] {}));
  EXPECT_EQ(q.slot_high_water(), 10u);
  for (int i = 0; i < 5; ++i) q.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(q.slot_high_water(), 10u);  // high water never decays
  EXPECT_EQ(q.callback_spills(), 0u);   // small lambdas stay inline
  EXPECT_EQ(q.callback_spill_bytes(), 0u);

  // A deliberately oversized capture through the explicit escape hatch
  // must be counted.
  struct Big {
    char bytes[256] = {};
  };
  Big big;
  q.schedule(SimTime::ns(100), InlineCallback::spill([big] { (void)big; }));
  EXPECT_EQ(q.callback_spills(), 1u);
  EXPECT_GE(q.callback_spill_bytes(), sizeof(Big));
}

}  // namespace
}  // namespace paratick::sim
