#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace paratick::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::ns(30), [&] { order.push_back(3); });
  q.schedule(SimTime::ns(10), [&] { order.push_back(1); });
  q.schedule(SimTime::ns(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesPopFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime::ns(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(SimTime::ns(10), [&] { fired = true; });
  EXPECT_TRUE(q.pending(id));
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.pending(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(SimTime::ns(10), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdIsSafe) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
}

TEST(EventQueue, CancelledHeadSkippedByNextTime) {
  EventQueue q;
  const EventId first = q.schedule(SimTime::ns(10), [] {});
  q.schedule(SimTime::ns(20), [] {});
  q.cancel(first);
  EXPECT_EQ(q.next_time(), SimTime::ns(20));
}

TEST(EventQueue, PopSkipsCancelled) {
  EventQueue q;
  std::vector<int> order;
  const EventId a = q.schedule(SimTime::ns(1), [&] { order.push_back(1); });
  q.schedule(SimTime::ns(2), [&] { order.push_back(2); });
  q.cancel(a);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, CountersTrackActivity) {
  EventQueue q;
  const EventId a = q.schedule(SimTime::ns(1), [] {});
  q.schedule(SimTime::ns(2), [] {});
  q.cancel(a);
  EXPECT_EQ(q.scheduled_count(), 2u);
  EXPECT_EQ(q.cancelled_count(), 1u);
}

TEST(EventQueue, SizeReflectsLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(SimTime::ns(1), [] {});
  q.schedule(SimTime::ns(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, HeapCompactsWhenDeadEntriesDominate) {
  // Regression: lazy deletion left every cancelled entry in the heap until
  // popped; under timer-heavy workloads (dynticks reprogramming on every
  // idle transition) the heap grew far beyond size(). The queue must now
  // reclaim dead entries once they exceed half the heap.
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(q.schedule(SimTime::ns(i + 1), [] {}));
  }
  for (int i = 0; i < 9900; ++i) q.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(q.size(), 100u);
  // Invariant: dead weight never exceeds live entries (plus the small
  // compaction floor below which reclaiming is not worth it).
  EXPECT_LE(q.heap_entries(), 2 * q.size() + 64);
}

TEST(EventQueue, RepeatedReprogrammingStaysBounded) {
  // The dynticks pattern: schedule a deadline, cancel it, schedule the next.
  EventQueue q;
  EventId pending = q.schedule(SimTime::ns(1), [] {});
  for (int i = 2; i < 50000; ++i) {
    EXPECT_TRUE(q.cancel(pending));
    pending = q.schedule(SimTime::ns(i), [] {});
    ASSERT_LE(q.heap_entries(), 2 * q.size() + 64);
  }
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CompactionPreservesPopOrder) {
  EventQueue q;
  std::vector<EventId> doomed;
  std::vector<int> order;
  for (int i = 0; i < 500; ++i) {
    // Interleave survivors (record i) with victims at shuffled times.
    q.schedule(SimTime::ns(1000 + i), [&order, i] { order.push_back(i); });
    doomed.push_back(q.schedule(SimTime::ns(5000 - i), [] {}));
  }
  for (const EventId id : doomed) q.cancel(id);  // triggers compaction
  int expected = 0;
  while (!q.empty()) q.pop().fn();
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], expected++);
  }
  EXPECT_EQ(expected, 500);
}

TEST(EventQueue, CancelAllThenReuse) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) ids.push_back(q.schedule(SimTime::ns(i + 1), [] {}));
  for (const EventId id : ids) q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_LE(q.heap_entries(), 64u);
  bool fired = false;
  q.schedule(SimTime::ns(7), [&] { fired = true; });
  EXPECT_EQ(q.next_time(), SimTime::ns(7));
  q.pop().fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, StressOrderingRandomTimes) {
  EventQueue q;
  std::vector<std::int64_t> times;
  std::uint64_t x = 12345;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const auto t = static_cast<std::int64_t>(x % 1000);
    q.schedule(SimTime::ns(t), [] {});
  }
  SimTime last = SimTime::zero();
  while (!q.empty()) {
    auto [when, fn] = q.pop();
    EXPECT_GE(when, last);
    last = when;
  }
}

}  // namespace
}  // namespace paratick::sim
