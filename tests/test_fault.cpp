// Fault-injection layer: plan determinism, inertness of the default
// config, per-class tolerance/detection under each tick policy, sweep
// crash isolation with -j bit-identity, and replay-bundle round trips.
#include <gtest/gtest.h>

#include "expect_error.hpp"

#include <cstdio>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/replay.hpp"
#include "core/scenarios.hpp"
#include "core/sweep.hpp"
#include "core/system.hpp"
#include "fault/injector.hpp"
#include "sim/check.hpp"
#include "sim/engine.hpp"
#include "sim/error.hpp"
#include "sim/watchdog.hpp"
#include "workload/fio.hpp"
#include "workload/micro.hpp"

namespace paratick {
namespace {

using sim::SimTime;

fault::FaultConfig busy_config() {
  fault::FaultConfig cfg;
  cfg.timer_drop_prob = 0.1;
  cfg.timer_late_prob = 0.2;
  cfg.timer_coalesce_prob = 0.1;
  cfg.tsc_drift_ppm = 100.0;
  cfg.io_error_prob = 0.2;
  cfg.io_spike_prob = 0.2;
  cfg.steal_burst_prob = 0.3;
  cfg.tick_delay_prob = 0.3;
  cfg.softirq_spurious_prob = 0.2;
  cfg.softirq_drop_prob = 0.1;
  return cfg;
}

/// Fingerprint a long decision sequence from every injector stream.
std::vector<std::int64_t> decision_trace(fault::FaultInjector& inj) {
  std::vector<std::int64_t> trace;
  for (int i = 0; i < 200; ++i) {
    const SimTime now = SimTime::us(10 * (i + 1));
    const auto td = inj.on_timer_fire(now);
    trace.push_back(static_cast<std::int64_t>(td.action));
    trace.push_back(td.defer_until.nanoseconds());
    const auto io = inj.on_io_start();
    trace.push_back(io.fail ? 1 : 0);
    trace.push_back(static_cast<std::int64_t>(io.latency_factor * 1e6));
    trace.push_back(inj.steal_burst().nanoseconds());
    trace.push_back(inj.delay_tick_injection() ? 1 : 0);
    trace.push_back(inj.spurious_softirq() ? 1 : 0);
    trace.push_back(inj.drop_softirq() ? 1 : 0);
  }
  return trace;
}

TEST(FaultInjector, PlanIsPureInSeed) {
  fault::FaultInjector a(busy_config(), 42);
  fault::FaultInjector b(busy_config(), 42);
  fault::FaultInjector c(busy_config(), 43);
  const auto ta = decision_trace(a);
  EXPECT_EQ(ta, decision_trace(b));
  EXPECT_NE(ta, decision_trace(c));
  EXPECT_GT(a.stats().total(), 0u);  // rates high enough to actually fire
}

TEST(FaultInjector, DefaultConfigIsInert) {
  fault::FaultInjector inj(fault::FaultConfig{}, 7);
  for (int i = 0; i < 100; ++i) {
    const auto td = inj.on_timer_fire(SimTime::us(i));
    EXPECT_EQ(td.action, fault::FaultInjector::TimerDecision::Action::kDeliver);
    const auto io = inj.on_io_start();
    EXPECT_FALSE(io.fail);
    EXPECT_EQ(io.latency_factor, 1.0);
    EXPECT_EQ(inj.steal_burst(), SimTime::zero());
    EXPECT_FALSE(inj.delay_tick_injection());
    EXPECT_FALSE(inj.spurious_softirq());
    EXPECT_FALSE(inj.drop_softirq());
    // No drift: deadlines pass through untouched.
    EXPECT_EQ(inj.skew_deadline(0, SimTime::zero(), SimTime::us(50)),
              SimTime::us(50));
  }
  EXPECT_EQ(inj.stats().total(), 0u);
}

TEST(FaultInjector, TscSkewIsPurePerCpuAndNeverRewindsPastNow) {
  fault::FaultConfig cfg;
  cfg.tsc_drift_ppm = 1e5;  // 10% — exaggerated so the skew is visible
  const fault::FaultInjector inj(cfg, 99);
  const SimTime now = SimTime::us(10);
  const SimTime deadline = SimTime::us(1000);
  EXPECT_EQ(inj.skew_deadline(0, now, deadline), inj.skew_deadline(0, now, deadline));
  std::set<std::int64_t> skews;
  for (std::uint32_t cpu = 0; cpu < 8; ++cpu) {
    const SimTime skewed = inj.skew_deadline(cpu, now, deadline);
    EXPECT_GE(skewed, now);
    skews.insert(skewed.nanoseconds());
  }
  EXPECT_GT(skews.size(), 1u);  // CPUs actually drift apart
}

// ---- system-level fault tolerance ---------------------------------------

core::SystemSpec tick_storm_spec(guest::TickMode mode, int iterations = 300) {
  core::SystemSpec spec;
  spec.machine = hw::MachineSpec::small(1);
  core::VmSpec vm;
  vm.vcpus = 1;
  vm.guest.tick_mode = mode;
  vm.setup = [iterations](guest::GuestKernel& k) {
    workload::TickStormSpec storm;
    storm.iterations = iterations;
    workload::install_tick_storm(k, storm);
  };
  spec.vms.push_back(std::move(vm));
  spec.max_duration = SimTime::sec(2);
  spec.fault_seed = 4242;
  return spec;
}

TEST(SystemFaults, DroppedTimerInterruptsAreCaughtByWatchdog) {
  core::SystemSpec spec = tick_storm_spec(guest::TickMode::kDynticksIdle);
  spec.fault.timer_drop_prob = 1.0;  // every hardware fire is lost
  spec.watchdog = true;
  core::System system(std::move(spec));
  EXPECT_SIM_ERROR(system.run(), "timer");
  EXPECT_GT(system.fault_injector()->stats().timer_dropped, 0u);
}

TEST(SystemFaults, ParatickNeverLosesGuestTimersUnderDelayedHostTicks) {
  // Paper §5: paravirtual ticks may arrive late (they ride VM entries),
  // but guest timer interrupts are delivered by the hardware deadline
  // timer — a host that misses every tick-injection window must not cost
  // the guest a single timer. The watchdog enforces exactly that.
  core::SystemSpec spec = tick_storm_spec(guest::TickMode::kParatick);
  // Tick-delay faults strike at VM entries with no guest timer pending
  // (entries with one pending count as the tick — the §5.1 heuristic), so
  // pair sparse guest timers with a long busy-compute stretch: the compute
  // crosses many tick periods and every injection point rides an entry.
  spec.vms[0].setup = [](guest::GuestKernel& k) {
    workload::TickStormSpec storm;
    storm.sleep_interval = SimTime::ms(10);  // sparser than the tick period
    storm.iterations = 20;
    workload::install_tick_storm(k, storm);
    workload::PureComputeSpec compute;
    compute.total_cycles = 100'000'000;  // ~50 ms busy at 2 GHz
    compute.chunks = 100;
    workload::install_pure_compute(k, compute);
  };
  spec.fault.tick_delay_prob = 1.0;  // every due tick injection postponed
  spec.watchdog = true;
  core::System system(std::move(spec));
  const metrics::RunResult res = system.run();  // must not throw
  ASSERT_TRUE(res.completion_time().has_value());
  EXPECT_GT(res.faults.ticks_delayed, 0u);
}

TEST(SystemFaults, LateTimersWithinGraceAreToleratedByDynticks) {
  core::SystemSpec spec = tick_storm_spec(guest::TickMode::kDynticksIdle);
  spec.fault.timer_late_prob = 1.0;  // every fire late by <= 300 us
  spec.watchdog = true;              // grace 5 ms: late != lost
  core::System system(std::move(spec));
  const metrics::RunResult res = system.run();
  ASSERT_TRUE(res.completion_time().has_value());
  EXPECT_GT(res.faults.timer_delayed, 0u);
}

TEST(SystemFaults, CoalescedTimersAndStealBurstsComplete) {
  core::SystemSpec spec = tick_storm_spec(guest::TickMode::kParatick);
  spec.fault.timer_coalesce_prob = 0.3;
  spec.fault.steal_burst_prob = 0.1;
  spec.fault.steal_burst_max = SimTime::us(200);
  spec.watchdog = true;
  core::System system(std::move(spec));
  const metrics::RunResult res = system.run();
  ASSERT_TRUE(res.completion_time().has_value());
  EXPECT_GT(res.faults.timer_coalesced + res.faults.steal_bursts, 0u);
}

TEST(SystemFaults, BlockDeviceErrorsReachTheGuest) {
  core::SystemSpec spec;
  spec.machine = hw::MachineSpec::small(1);
  core::VmSpec vm;
  vm.vcpus = 1;
  vm.attach_disk = true;
  vm.setup = [](guest::GuestKernel& k) {
    workload::FioSpec fio;
    fio.ops = 300;
    workload::install_fio(k, fio);
  };
  spec.vms.push_back(std::move(vm));
  spec.max_duration = SimTime::sec(5);
  spec.fault.io_error_prob = 0.3;
  spec.fault.io_spike_prob = 0.3;
  spec.fault_seed = 77;
  core::System system(std::move(spec));
  const metrics::RunResult res = system.run();
  EXPECT_GT(res.faults.io_errors, 0u);
  EXPECT_GT(res.faults.io_spikes, 0u);
  EXPECT_EQ(res.vms[0].io_errors, res.faults.io_errors);
}

TEST(SystemFaults, SoftirqFaultsDegradeButTerminate) {
  core::SystemSpec spec = tick_storm_spec(guest::TickMode::kDynticksIdle, 150);
  spec.fault.softirq_spurious_prob = 0.3;
  spec.fault.softirq_drop_prob = 0.2;
  core::System system(std::move(spec));
  const metrics::RunResult res = system.run();
  ASSERT_TRUE(res.completion_time().has_value());
  EXPECT_GT(res.faults.softirq_spurious, 0u);
  EXPECT_GT(res.faults.softirq_dropped, 0u);
}

TEST(SystemFaults, WallClockLimitThrowsTimeout) {
  core::SystemSpec spec = tick_storm_spec(guest::TickMode::kDynticksIdle);
  spec.wall_limit_sec = 1e-9;  // impossible budget: first check trips it
  core::System system(std::move(spec));
  try {
    (void)system.run();
    FAIL() << "expected SimError{kTimeout}";
  } catch (const sim::SimError& e) {
    EXPECT_EQ(e.kind(), sim::SimError::Kind::kTimeout);
  }
}

// ---- watchdog + SimError context ----------------------------------------

TEST(Watchdog, SweepsPeriodicallyAndThrowsOnViolation) {
  sim::Engine engine;
  sim::Watchdog wd(engine, SimTime::ms(1));
  bool broken = false;
  wd.add_check("my-invariant", [&]() -> std::optional<std::string> {
    if (broken) return "it broke";
    return std::nullopt;
  });
  wd.start();
  engine.run_until(SimTime::ms(3));
  EXPECT_GE(wd.sweeps(), 3u);
  broken = true;
  EXPECT_SIM_ERROR(engine.run_until(SimTime::ms(10)), "it broke");
  wd.stop();
}

TEST(Watchdog, DoubleStartArmsOnlyOneSweepChain) {
  sim::Engine engine;
  sim::Watchdog wd(engine, SimTime::ms(1));
  wd.start();
  wd.start();  // must cancel the first chain, not stack a second one
  engine.run_until(SimTime::ms(4));
  // Two chains would sweep twice per period. Each start() also sweeps
  // immediately, so: 2 immediate + 4 periodic = 6 with the fix, 10 without.
  EXPECT_EQ(wd.sweeps(), 6u);
  wd.stop();
  // stop() is terminal until the next start(): no further sweeps.
  const std::uint64_t at_stop = wd.sweeps();
  engine.run_until(SimTime::ms(8));
  EXPECT_EQ(wd.sweeps(), at_stop);
}

TEST(SimError, CarriesSimTimeContextFromEngine) {
  sim::Engine engine;
  engine.schedule_at(SimTime::us(50), [] { PARATICK_CHECK_MSG(false, "boom"); });
  try {
    engine.run();
    FAIL() << "expected SimError";
  } catch (const sim::SimError& e) {
    EXPECT_EQ(e.kind(), sim::SimError::Kind::kCheck);
    ASSERT_TRUE(e.sim_time().has_value());
    EXPECT_EQ(*e.sim_time(), SimTime::us(50));
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
  // Outside the engine there is no sim-time context.
  try {
    PARATICK_CHECK_MSG(false, "bare");
    FAIL() << "expected SimError";
  } catch (const sim::SimError& e) {
    EXPECT_FALSE(e.sim_time().has_value());
  }
}

// ---- chaos sweeps: crash isolation, determinism, replay ------------------

/// Pure compute under 100% timer drops: dynticks cells die on the
/// watchdog (their busy tick arms the hardware deadline timer and every
/// fire is lost), paratick cells survive (ticks are injected at VM entry
/// and the workload arms no other timers). One sweep, both outcomes.
core::SweepConfig split_outcome_sweep(unsigned threads) {
  core::SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(1);
  cfg.base.vcpus = 1;
  cfg.base.max_duration = SimTime::ms(200);
  cfg.base.setup = [](guest::GuestKernel& k) {
    workload::PureComputeSpec spec;
    spec.total_cycles = 100'000'000;  // ~50 ms at 2 GHz
    spec.chunks = 100;
    workload::install_pure_compute(k, spec);
  };
  cfg.modes = {guest::TickMode::kDynticksIdle, guest::TickMode::kParatick};
  cfg.repeat = 2;
  cfg.root_seed = 321;
  cfg.threads = threads;
  cfg.fault.timer_drop_prob = 1.0;
  cfg.watchdog = true;
  return cfg;
}

TEST(ChaosSweep, CrashIsolatesRunsAndCompletesTheFullGrid) {
  const core::SweepResult res = core::SweepRunner(split_outcome_sweep(2)).run();
  ASSERT_EQ(res.cells.size(), 2u);
  ASSERT_EQ(res.runs.size(), 4u);

  const auto* dynticks = res.find("", guest::TickMode::kDynticksIdle);
  const auto* paratick = res.find("", guest::TickMode::kParatick);
  ASSERT_NE(dynticks, nullptr);
  ASSERT_NE(paratick, nullptr);

  // Dynticks: every replica lost its tick timer -> degraded, no survivors.
  EXPECT_EQ(dynticks->replicas_failed, 2u);
  EXPECT_TRUE(dynticks->degraded());
  EXPECT_EQ(dynticks->exits_total.count(), 0u);

  // Paratick: unharmed — aggregates cover both replicas.
  EXPECT_EQ(paratick->replicas_failed, 0u);
  EXPECT_FALSE(paratick->degraded());
  EXPECT_EQ(paratick->exits_total.count(), 2u);
  EXPECT_GT(paratick->first.exits_total, 0u);

  EXPECT_EQ(res.degraded_cell_count(), 1u);
  EXPECT_EQ(res.ok_run_count(), 2u);
  ASSERT_EQ(res.failed_runs().size(), 2u);
  for (const core::SweepRun* run : res.failed_runs()) {
    EXPECT_EQ(run->failure->kind, core::RunFailure::Kind::kWatchdog);
    EXPECT_GT(run->failure->sim_time_ns, 0);
  }

  // The degradation columns surface in both export formats.
  EXPECT_NE(res.to_csv().find(",failed,timed_out"), std::string::npos);
  EXPECT_NE(res.to_json().find("\"failed\": 2"), std::string::npos);
}

TEST(ChaosSweep, FailuresAreBitIdenticalAcrossThreadCounts) {
  const core::SweepResult serial = core::SweepRunner(split_outcome_sweep(1)).run();
  const core::SweepResult parallel = core::SweepRunner(split_outcome_sweep(4)).run();
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    const core::SweepRun& a = serial.runs[i];
    const core::SweepRun& b = parallel.runs[i];
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.seed, b.seed);
    ASSERT_EQ(a.failure.has_value(), b.failure.has_value());
    if (a.failure) {
      EXPECT_EQ(a.failure->kind, b.failure->kind);
      EXPECT_EQ(a.failure->expr, b.failure->expr);
      EXPECT_EQ(a.failure->sim_time_ns, b.failure->sim_time_ns);
      EXPECT_EQ(a.failure->events_executed, b.failure->events_executed);
    } else {
      EXPECT_EQ(a.result.exits_total, b.result.exits_total);
      EXPECT_EQ(a.result.events_executed, b.result.events_executed);
    }
  }
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
  // The JSON header legitimately records thread count and wall time; the
  // cells block must be byte-identical.
  const auto cells_block = [](const std::string& j) {
    return j.substr(j.find("\"cells\""));
  };
  EXPECT_EQ(cells_block(serial.to_json()), cells_block(parallel.to_json()));
}

TEST(ChaosSweep, ReplayBundleReproducesTheIdenticalError) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "paratick_fault_test").string();
  std::filesystem::remove_all(dir);

  core::SweepConfig cfg = split_outcome_sweep(2);
  cfg.failure_dir = dir;
  cfg.bench_name = "test_fault";
  const core::SweepResult res = core::SweepRunner(cfg).run();
  ASSERT_FALSE(res.failed_runs().empty());

  const core::SweepRun* failed = res.failed_runs().front();
  ASSERT_FALSE(failed->bundle_path.empty());
  const core::ReplayBundle bundle = core::load_replay_bundle(failed->bundle_path);
  EXPECT_EQ(bundle.run_index, failed->run_index);
  EXPECT_EQ(bundle.seed, failed->seed);
  EXPECT_EQ(bundle.failure.kind, failed->failure->kind);
  EXPECT_EQ(bundle.failure.sim_time_ns, failed->failure->sim_time_ns);

  // Re-execute against a *fresh* config (the bundle's identity overrides
  // root seed / repeat / faults) and demand the exact same error.
  const core::SweepRun replayed = core::replay_run(split_outcome_sweep(1), bundle);
  std::string detail;
  EXPECT_TRUE(core::reproduces(bundle, replayed, &detail)) << detail;
  EXPECT_NE(detail.find("reproduced"), std::string::npos);

  std::filesystem::remove_all(dir);
}

TEST(ChaosSweep, MaxFailuresSkipsRemainingRuns) {
  core::SweepConfig cfg = split_outcome_sweep(1);
  cfg.modes = {guest::TickMode::kDynticksIdle};  // every run fails
  cfg.repeat = 5;
  cfg.max_failures = 1;
  const core::SweepResult res = core::SweepRunner(cfg).run();
  ASSERT_EQ(res.runs.size(), 5u);
  std::size_t skipped = 0;
  for (const auto& run : res.runs) {
    if (run.failure && run.failure->kind == core::RunFailure::Kind::kSkipped) {
      ++skipped;
      EXPECT_EQ(run.seed, core::derive_seed(cfg.root_seed, run.run_index));
    }
  }
  EXPECT_GE(res.failed_runs().size(), 1u);
  EXPECT_GE(skipped, 1u);
  EXPECT_EQ(res.cells[0].replicas_skipped, skipped);
}

TEST(ChaosSweep, RunTimeoutMarksCellsTimedOut) {
  core::SweepConfig cfg = split_outcome_sweep(1);
  cfg.modes = {guest::TickMode::kParatick};  // would otherwise succeed
  cfg.repeat = 1;
  cfg.run_timeout_sec = 1e-9;
  const core::SweepResult res = core::SweepRunner(cfg).run();
  ASSERT_EQ(res.runs.size(), 1u);
  ASSERT_TRUE(res.runs[0].failure.has_value());
  EXPECT_EQ(res.runs[0].failure->kind, core::RunFailure::Kind::kTimeout);
  EXPECT_EQ(res.cells[0].replicas_timed_out, 1u);
}

// ---- scenario registry + CLI --------------------------------------------

TEST(ChaosScenarios, RegistryBuildsEveryScenario) {
  for (const char* name : core::chaos_scenario_names()) {
    EXPECT_TRUE(core::is_chaos_scenario(name));
    const core::SweepConfig cfg = core::build_chaos_scenario(name);
    EXPECT_TRUE(cfg.fault.any());
    EXPECT_TRUE(cfg.watchdog);
    EXPECT_EQ(cfg.scenario, name);
    EXPECT_FALSE(cfg.modes.empty());
  }
  EXPECT_FALSE(core::is_chaos_scenario("nope"));
  EXPECT_SIM_ERROR((void)core::build_chaos_scenario("nope"), "unknown");
}

TEST(SweepCli, ParsesChaosAndFaultFlags) {
  const char* argv[] = {"bench",          "--chaos",        "--max-failures",
                        "3",              "--run-timeout",  "2.5",
                        "--failure-dir",  "/tmp/failures",  "--fault-timer-drop",
                        "0.5",            "--fault-steal",  "0.25"};
  const core::SweepCli cli = core::SweepCli::parse(
      static_cast<int>(std::size(argv)), const_cast<char**>(argv));
  EXPECT_TRUE(cli.chaos);
  EXPECT_EQ(cli.max_failures, 3u);
  EXPECT_DOUBLE_EQ(cli.run_timeout_sec, 2.5);
  EXPECT_EQ(cli.failure_dir, "/tmp/failures");
  ASSERT_EQ(cli.fault_overrides.size(), 2u);

  core::SweepConfig cfg;
  cli.apply(cfg);
  EXPECT_TRUE(cfg.watchdog);  // --chaos implies the watchdog
  EXPECT_TRUE(cfg.fault.any());
  // Overrides win over the --chaos defaults.
  EXPECT_DOUBLE_EQ(cfg.fault.timer_drop_prob, 0.5);
  EXPECT_DOUBLE_EQ(cfg.fault.steal_burst_prob, 0.25);
  // Untouched knobs keep the default chaos mix.
  EXPECT_DOUBLE_EQ(cfg.fault.tick_delay_prob,
                   core::default_chaos_faults().tick_delay_prob);
}

}  // namespace
}  // namespace paratick
