// Guest-kernel tests: task scheduling, blocking sync (barrier, mutex,
// semaphore), sleeps through the timer subsystem, block I/O waits, and
// preemption — exercised through small full-system simulations.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "workload/program.hpp"

namespace paratick::guest {
namespace {

using sim::Cycles;
using sim::SimTime;
using workload::Program;
using workload::make_task_body;

struct Built {
  std::unique_ptr<core::System> system;
  metrics::RunResult result;
};

core::SystemSpec base_spec(int cpus, TickMode mode = TickMode::kDynticksIdle) {
  core::SystemSpec spec;
  spec.machine = hw::MachineSpec::small(static_cast<std::uint32_t>(cpus));
  spec.max_duration = SimTime::sec(5);
  core::VmSpec vm;
  vm.vcpus = cpus;
  vm.guest.tick_mode = mode;
  vm.attach_disk = true;
  spec.vms.push_back(std::move(vm));
  return spec;
}

Built run_with(core::SystemSpec spec, std::function<void(GuestKernel&)> setup) {
  spec.vms[0].setup = std::move(setup);
  auto system = std::make_unique<core::System>(std::move(spec));
  auto result = system->run();
  return {std::move(system), std::move(result)};
}

TEST(GuestKernel, SingleTaskRunsToCompletion) {
  auto built = run_with(base_spec(1), [](GuestKernel& k) {
    Program p;
    p.compute(1'000'000).repeat(10);
    k.add_task(make_task_body(p));
  });
  ASSERT_TRUE(built.result.completion_time().has_value());
  // 10 Mcycles at 2 GHz = 5 ms of pure compute, plus kernel overheads.
  EXPECT_GT(built.result.completion_time()->milliseconds(), 5.0);
  EXPECT_LT(built.result.completion_time()->milliseconds(), 7.0);
  EXPECT_EQ(built.system->kernel(0).tasks_done(), 1);
}

TEST(GuestKernel, TasksSpreadRoundRobinAcrossCpus) {
  auto built = run_with(base_spec(4), [](GuestKernel& k) {
    for (int i = 0; i < 8; ++i) {
      Program p;
      p.compute(100'000);
      k.add_task(make_task_body(p));
    }
  });
  EXPECT_EQ(built.system->kernel(0).task(0).home_cpu, 0);
  EXPECT_EQ(built.system->kernel(0).task(1).home_cpu, 1);
  EXPECT_EQ(built.system->kernel(0).task(5).home_cpu, 1);
  EXPECT_EQ(built.system->kernel(0).tasks_done(), 8);
}

TEST(GuestKernel, BarrierBlocksUntilAllArrive) {
  auto built = run_with(base_spec(2), [](GuestKernel& k) {
    k.create_barrier(0, 2);
    Program fast;
    fast.compute(10'000).barrier(0).compute(10'000);
    Program slow;
    slow.compute(8'000'000).barrier(0).compute(10'000);  // 4 ms
    k.add_task(make_task_body(fast), 0);
    k.add_task(make_task_body(slow), 1);
  });
  // The fast task must have blocked once (waiting for the slow one).
  EXPECT_EQ(built.system->kernel(0).task(0).blocks, 1u);
  EXPECT_EQ(built.system->kernel(0).task(1).blocks, 0u);  // last arrival
  ASSERT_TRUE(built.result.completion_time().has_value());
  EXPECT_GT(built.result.completion_time()->milliseconds(), 4.0);
}

TEST(GuestKernel, BarrierReusableAcrossIterations) {
  auto built = run_with(base_spec(2), [](GuestKernel& k) {
    k.create_barrier(0, 2);
    for (int t = 0; t < 2; ++t) {
      Program p;
      p.compute_exp(50'000).barrier(0).repeat(100);
      k.add_task(make_task_body(p), t);
    }
  });
  EXPECT_EQ(built.system->kernel(0).tasks_done(), 2);
  // ~one block per iteration for whoever loses the race.
  const auto blocks =
      built.system->kernel(0).task(0).blocks + built.system->kernel(0).task(1).blocks;
  EXPECT_GE(blocks, 50u);
  EXPECT_LE(blocks, 100u);
}

TEST(GuestKernel, MutexProvidesExclusionAndHandoff) {
  auto built = run_with(base_spec(4), [](GuestKernel& k) {
    k.create_barrier(0, 4);
    for (int t = 0; t < 4; ++t) {
      Program p;
      p.critical(1, 50'000).barrier(0).repeat(50);  // single hot lock
      k.add_task(make_task_body(p), t);
    }
  });
  EXPECT_EQ(built.system->kernel(0).tasks_done(), 4);
  // Heavy contention: plenty of blocking happened.
  std::uint64_t blocks = 0;
  for (int t = 0; t < 4; ++t) blocks += built.system->kernel(0).task(t).blocks;
  EXPECT_GT(blocks, 100u);
}

TEST(GuestKernel, SemaphoreProducerConsumer) {
  auto built = run_with(base_spec(2), [](GuestKernel& k) {
    Program producer;
    producer.compute(100'000).sem_post(0).repeat(200);
    Program consumer;
    consumer.sem_wait(0).compute(10'000).repeat(200);
    k.add_task(make_task_body(producer), 0);
    k.add_task(make_task_body(consumer), 1);
  });
  EXPECT_EQ(built.system->kernel(0).tasks_done(), 2);
  // The consumer outpaces the producer and blocks for most items.
  EXPECT_GT(built.system->kernel(0).task(1).blocks, 100u);
  EXPECT_LT(built.system->kernel(0).task(0).blocks, 5u);
}

TEST(GuestKernel, SemaphoreCountAllowsBurstWithoutBlocking) {
  auto built = run_with(base_spec(2), [](GuestKernel& k) {
    // Producer posts everything first, consumer drains afterwards.
    Program producer;
    producer.sem_post(0).repeat(50);
    Program consumer;
    consumer.compute(20'000'000).sem_wait(0).repeat(50);  // starts 10 ms late
    k.add_task(make_task_body(producer), 0);
    k.add_task(make_task_body(consumer), 1);
  });
  EXPECT_EQ(built.system->kernel(0).tasks_done(), 2);
}

TEST(GuestKernel, ShortSleepUsesHrtimerAndWakesOnTime) {
  auto built = run_with(base_spec(1), [](GuestKernel& k) {
    Program p;
    p.sleep(SimTime::ms(2)).compute(1000).repeat(5);  // < 4 tick periods
    k.add_task(make_task_body(p));
  });
  ASSERT_TRUE(built.result.completion_time().has_value());
  const double ms = built.result.completion_time()->milliseconds();
  EXPECT_GE(ms, 10.0);  // 5 sleeps of 2 ms
  EXPECT_LT(ms, 14.0);  // woken promptly, not at tick granularity
  EXPECT_EQ(built.system->kernel(0).task(0).blocks, 5u);
}

TEST(GuestKernel, LongSleepUsesTimerWheelJiffyGranularity) {
  auto built = run_with(base_spec(1), [](GuestKernel& k) {
    Program p;
    p.sleep(SimTime::ms(40)).compute(1000);  // > 4 tick periods -> wheel
    k.add_task(make_task_body(p));
  });
  ASSERT_TRUE(built.result.completion_time().has_value());
  const double ms = built.result.completion_time()->milliseconds();
  EXPECT_GE(ms, 40.0);
  EXPECT_LT(ms, 50.0);  // within ~2 jiffies of the deadline
}

TEST(GuestKernel, SleepingVcpuHaltsInsteadOfSpinning) {
  auto built = run_with(base_spec(1), [](GuestKernel& k) {
    Program p;
    p.sleep(SimTime::ms(100)).compute(1000);
    k.add_task(make_task_body(p));
  });
  // During the 100 ms sleep the CPU must be mostly idle.
  const auto idle = built.result.cycles.total(hw::CycleCategory::kIdle).count();
  const auto total = built.result.cycles.grand_total().count();
  EXPECT_GT(static_cast<double>(idle) / static_cast<double>(total), 0.9);
}

TEST(GuestKernel, SyncIoBlocksTaskUntilCompletion) {
  auto built = run_with(base_spec(1), [](GuestKernel& k) {
    Program p;
    hw::IoRequest req;
    req.bytes = 4096;
    p.io(req).repeat(10);
    k.add_task(make_task_body(p));
  });
  EXPECT_EQ(built.system->kernel(0).tasks_done(), 1);
  ASSERT_TRUE(built.result.completion_time().has_value());
  // 10 reads at >= ~30 us device latency.
  EXPECT_GE(built.result.completion_time()->microseconds(), 300.0);
  EXPECT_EQ(built.system->disk(0)->completed_requests(), 10u);
  EXPECT_EQ(built.system->kernel(0).task(0).blocks, 10u);
}

TEST(GuestKernel, TickPreemptionSharesOneCpuBetweenTasks) {
  auto built = run_with(base_spec(1), [](GuestKernel& k) {
    for (int t = 0; t < 2; ++t) {
      Program p;
      // Chunked compute so preemption can happen at op boundaries.
      p.compute(1'000'000).repeat(20);  // 10 ms total each
      k.add_task(make_task_body(p), 0);
    }
  });
  EXPECT_EQ(built.system->kernel(0).tasks_done(), 2);
  ASSERT_TRUE(built.result.vms[0].completion_time.has_value());
  // Both ran interleaved on one vCPU: total ~20 ms + overhead.
  const double ms = built.result.vms[0].completion_time->milliseconds();
  EXPECT_GT(ms, 20.0);
  EXPECT_LT(ms, 25.0);
  // Round-robin means task 0 cannot finish 10 ms before task 1.
  EXPECT_GT(built.system->kernel(0).task(0).finished_at.milliseconds(), 15.0);
}

TEST(GuestKernel, RemoteWakeSendsRescheduleIpi) {
  auto built = run_with(base_spec(2), [](GuestKernel& k) {
    k.create_barrier(0, 2);
    for (int t = 0; t < 2; ++t) {
      Program p;
      p.compute_norm(200'000, 0.5).barrier(0).repeat(20);
      k.add_task(make_task_body(p), t);
    }
  });
  EXPECT_GT(built.result.exits_by_cause[static_cast<std::size_t>(
                hw::ExitCause::kIpiSend)],
            0u);
  EXPECT_EQ(built.system->kernel(0).tasks_done(), 2);
}

TEST(GuestKernel, PolicyStatsAggregateAcrossCpus) {
  auto built = run_with(base_spec(2), [](GuestKernel& k) {
    // Unequal lengths: CPU 0 idles long before the run completes.
    Program fast;
    fast.compute(100'000);
    Program slow;
    slow.compute(20'000'000);
    k.add_task(make_task_body(fast), 0);
    k.add_task(make_task_body(slow), 1);
  });
  const auto stats = built.system->kernel(0).aggregated_policy_stats();
  EXPECT_GT(stats.msr_writes, 0u);   // both boots armed their ticks
  EXPECT_GT(stats.idle_entries, 0u);
}

TEST(GuestKernel, AllDoneFiresExactlyWhenLastTaskFinishes) {
  auto built = run_with(base_spec(2), [](GuestKernel& k) {
    Program fast;
    fast.compute(100'000);
    Program slow;
    slow.compute(10'000'000);
    k.add_task(make_task_body(fast), 0);
    k.add_task(make_task_body(slow), 1);
  });
  ASSERT_TRUE(built.result.vms[0].completion_time.has_value());
  EXPECT_EQ(*built.result.vms[0].completion_time,
            built.system->kernel(0).task(1).finished_at);
}

TEST(GuestKernel, FaultOpCausesBackgroundExit) {
  auto built = run_with(base_spec(1), [](GuestKernel& k) {
    Program p;
    p.compute(10'000).fault().repeat(25);
    k.add_task(make_task_body(p));
  });
  EXPECT_EQ(built.result.exits_by_cause[static_cast<std::size_t>(
                hw::ExitCause::kBackground)],
            25u);
}

}  // namespace
}  // namespace paratick::guest
