// Adaptive halt-polling tests (the KVM halt_poll_ns heuristic extension):
// short blockers grow their poll window and start hitting polls; long
// sleepers shrink it back to zero and stop burning CPU.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "workload/micro.hpp"
#include "workload/program.hpp"

namespace paratick::hv {
namespace {

using sim::SimTime;

metrics::RunResult run_sleeper(SimTime interval, bool adaptive,
                               core::System** out_system,
                               std::unique_ptr<core::System>& holder) {
  core::SystemSpec spec;
  spec.machine = hw::MachineSpec::small(1);
  spec.host.halt_polling = true;
  spec.host.halt_poll_window = SimTime::us(50);
  spec.host.halt_poll_adaptive = adaptive;
  spec.max_duration = SimTime::sec(10);
  core::VmSpec vm;
  vm.vcpus = 1;
  vm.setup = [interval](guest::GuestKernel& k) {
    workload::Program p;
    p.compute(20'000).sleep(interval).repeat(500);
    k.add_task(workload::make_task_body(p), 0);
  };
  spec.vms.push_back(std::move(vm));
  holder = std::make_unique<core::System>(std::move(spec));
  *out_system = holder.get();
  return holder->run();
}

TEST(AdaptiveHaltPoll, ShortBlocksKeepPollingAndHit) {
  core::System* system = nullptr;
  std::unique_ptr<core::System> holder;
  // 30 us sleeps fit inside the 50 us max window: polling should succeed.
  run_sleeper(SimTime::us(30), /*adaptive=*/true, &system, holder);
  const Vcpu& vcpu = system->kvm().vms()[0]->vcpu(0);
  EXPECT_GT(vcpu.poll_hits, 400u);
  EXPECT_GT(vcpu.halt_poll_window, SimTime::zero());
}

TEST(AdaptiveHaltPoll, LongSleepsShrinkWindowToZero) {
  core::System* system = nullptr;
  std::unique_ptr<core::System> holder;
  // 5 ms sleeps: every poll misses; adaptation must shut polling down.
  const auto r = run_sleeper(SimTime::ms(5), /*adaptive=*/true, &system, holder);
  const Vcpu& vcpu = system->kvm().vms()[0]->vcpu(0);
  EXPECT_EQ(vcpu.halt_poll_window, SimTime::zero());
  // Only the first few halts polled before the window collapsed.
  EXPECT_LT(vcpu.poll_misses, 20u);  // ~16 halvings from 50 us to 0
  // Almost no CPU burnt polling.
  const auto polled = r.cycles.total(hw::CycleCategory::kHaltPoll).count();
  EXPECT_LT(polled, 1'000'000);
}

TEST(AdaptiveHaltPoll, FixedWindowKeepsBurningOnLongSleeps) {
  core::System* system = nullptr;
  std::unique_ptr<core::System> holder;
  const auto r = run_sleeper(SimTime::ms(5), /*adaptive=*/false, &system, holder);
  const Vcpu& vcpu = system->kvm().vms()[0]->vcpu(0);
  // Non-adaptive: every halt pays the full 50 us window.
  EXPECT_GT(vcpu.poll_misses, 400u);
  const auto polled = r.cycles.total(hw::CycleCategory::kHaltPoll).count();
  EXPECT_GT(polled, 40'000'000);  // ~500 x 50 us x 2 GHz
}

TEST(AdaptiveHaltPoll, AdaptiveBeatsFixedOnMixedWorkload) {
  auto run_mixed = [](bool adaptive) {
    core::SystemSpec spec;
    spec.machine = hw::MachineSpec::small(1);
    spec.host.halt_polling = true;
    spec.host.halt_poll_window = SimTime::us(50);
    spec.host.halt_poll_adaptive = adaptive;
    spec.max_duration = SimTime::sec(10);
    core::VmSpec vm;
    vm.vcpus = 1;
    vm.setup = [](guest::GuestKernel& k) {
      workload::Program p;
      // Alternating short and long waits.
      p.compute(20'000).sleep(SimTime::us(20)).compute(20'000).sleep(SimTime::ms(4));
      p.repeat(300);
      k.add_task(workload::make_task_body(p), 0);
    };
    spec.vms.push_back(std::move(vm));
    core::System system(std::move(spec));
    const auto r = system.run();
    return r.cycles.total(hw::CycleCategory::kHaltPoll).count();
  };
  // Adaptation cannot fully win on a strict alternation, but it must not
  // burn more than the fixed window does.
  EXPECT_LE(run_mixed(true), run_mixed(false));
}

}  // namespace
}  // namespace paratick::hv
