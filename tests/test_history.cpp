#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/history.hpp"
#include "core/sweep.hpp"
#include "sim/error.hpp"

namespace paratick::core {
namespace {

// A two-cell SweepResult with replica spread, built by hand so the tests
// control every number exactly.
SweepResult sample_result() {
  SweepResult res;
  res.wall_seconds = 1.25;
  res.threads_used = 2;
  for (const char* variant : {"idle", "storm, \"hostile\""}) {
    SweepCellSummary cell;
    cell.key.variant = variant;
    cell.key.mode = guest::TickMode::kParatick;
    cell.key.tick_freq_hz = 250.0;
    cell.key.vcpus = 2;
    cell.key.overcommit = 1.0;
    for (double x : {100.0, 104.0, 96.0}) cell.exits_total.add(x);
    for (double x : {40.0, 41.0, 42.0}) cell.exits_timer.add(x);
    for (double x : {5e6, 5.1e6, 4.9e6}) cell.busy_cycles.add(x);
    for (double x : {12.5, 12.75, 12.25}) cell.exec_time_ms.add(x);
    for (double x : {3.0, 4.0, 5.0}) {
      cell.wakeup_latency_us.add(x);
      cell.wake_hist_us.add(x);
    }
    res.cells.push_back(std::move(cell));
  }
  return res;
}

TEST(History, JsonRoundTripsThroughParser) {
  const SweepResult res = sample_result();
  const Snapshot snap = parse_snapshot(res.to_json());

  // Host artifacts (wall time, thread count) are deliberately absent from
  // the export — the JSON must be a pure function of the cells so that
  // thread/fork/shard-merged sweeps stay byte-identical. The parser
  // tolerates their absence with zero fallbacks.
  EXPECT_DOUBLE_EQ(snap.wall_seconds, 0.0);
  EXPECT_EQ(snap.threads, 0u);
  ASSERT_EQ(snap.cells.size(), 2u);

  const SnapshotCell& cell = snap.cells[0];
  EXPECT_EQ(cell.variant, "idle");
  EXPECT_EQ(snap.cells[1].variant, "storm, \"hostile\"");  // JSON-escape round-trip
  EXPECT_EQ(cell.mode, "paratick");
  EXPECT_DOUBLE_EQ(cell.tick_freq_hz, 250.0);
  EXPECT_EQ(cell.vcpus, 2);
  EXPECT_DOUBLE_EQ(cell.overcommit, 1.0);
  EXPECT_EQ(cell.replicas, 3u);

  const SnapshotMetric* exits = cell.metric("exits");
  ASSERT_NE(exits, nullptr);
  EXPECT_NEAR(exits->mean, 100.0, 0.05);  // %.1f in to_json
  EXPECT_NEAR(exits->stddev, 4.0, 0.05);
  EXPECT_EQ(exits->n, 3u);  // inherited from replicas

  const SnapshotMetric* wake = cell.metric("wake_us");
  ASSERT_NE(wake, nullptr);
  EXPECT_NEAR(wake->mean, 4.0, 1e-3);
  EXPECT_EQ(wake->n, 3u);  // explicit n in the wake_us object
  EXPECT_EQ(cell.metric("no_such_metric"), nullptr);

  // The histogram is carried as bucket counts, not mistaken for a
  // mean/stddev metric object.
  EXPECT_EQ(cell.metric("wake_us_hist"), nullptr);
  EXPECT_EQ(cell.wake_hist, sample_result().cells[0].wake_hist_us.buckets());
  std::uint64_t total = 0;
  for (const std::uint64_t b : cell.wake_hist) total += b;
  EXPECT_EQ(total, 3u);
}

TEST(History, MissingSnapshotGivesActionableError) {
  std::string error;
  EXPECT_FALSE(try_load_snapshot("/no/such/dir/baseline.json", &error));
  EXPECT_NE(error.find("/no/such/dir/baseline.json"), std::string::npos);
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(History, CorruptSnapshotGivesActionableError) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "paratick_corrupt_snapshot.json";
  {
    std::ofstream out(path);
    out << "{\"cells\": [truncated";
  }
  std::string error;
  EXPECT_FALSE(try_load_snapshot(path.string(), &error));
  EXPECT_NE(error.find(path.string()), std::string::npos);
  std::filesystem::remove(path);

  // The throwing loader still throws (gates that want hard failure).
  EXPECT_THROW((void)load_snapshot("/no/such/file.json"), sim::SimError);
}

TEST(History, KsDistanceFlagsTailShift) {
  const Snapshot base = parse_snapshot(sample_result().to_json());
  ASSERT_FALSE(base.cells[0].wake_hist.empty());
  Snapshot cur = base;
  // Push every sample of cell 0 into a much higher bucket: the mean-based
  // metrics in this synthetic edit stay put, but the distribution moved
  // wholesale -> KS distance 1.0.
  auto& hist = cur.cells[0].wake_hist;
  hist.assign(hist.size() + 8, 0);
  hist.back() = 3;
  const DiffResult diff = diff_snapshots(base, cur);
  ASSERT_EQ(diff.findings.size(), 1u);
  EXPECT_EQ(diff.findings[0].kind, DiffFinding::Kind::kDistribution);
  EXPECT_EQ(diff.findings[0].metric, "wake_us_hist");
  EXPECT_DOUBLE_EQ(diff.findings[0].z, 1.0);

  const DiffConfig cfg;
  const std::string text = describe(diff, cfg);
  EXPECT_NE(text.find("DIST"), std::string::npos);
  EXPECT_NE(text.find("KS"), std::string::npos);

  // Raising the threshold above the distance silences the gate.
  DiffConfig lax;
  lax.ks_threshold = 1.5;
  EXPECT_TRUE(diff_snapshots(base, cur, lax).clean());

  // Snapshots without histograms (pre-histogram baselines) are skipped.
  Snapshot old = base;
  for (auto& c : old.cells) c.wake_hist.clear();
  EXPECT_TRUE(diff_snapshots(old, cur).clean());
}

TEST(History, IdenticalSnapshotsDiffClean) {
  const std::string json = sample_result().to_json();
  const DiffResult diff = diff_snapshots(parse_snapshot(json), parse_snapshot(json));
  EXPECT_TRUE(diff.clean());
  EXPECT_EQ(diff.cells_compared, 2u);
  EXPECT_GT(diff.metrics_compared, 0u);
}

TEST(History, FlagsInjectedMeanShift) {
  const Snapshot base = parse_snapshot(sample_result().to_json());
  Snapshot cur = base;
  // +25% on exits: far outside the ~4% replica stddev at z=4.
  for (auto& m : cur.cells[0].metrics) {
    if (m.name == "exits") m.mean *= 1.25;
  }
  const DiffResult diff = diff_snapshots(base, cur);
  ASSERT_EQ(diff.findings.size(), 1u);
  EXPECT_EQ(diff.findings[0].kind, DiffFinding::Kind::kShift);
  EXPECT_EQ(diff.findings[0].metric, "exits");
  EXPECT_EQ(diff.findings[0].cell, base.cells[0].key());
  EXPECT_NEAR(diff.findings[0].rel_delta, 0.25, 1e-6);
  EXPECT_GT(diff.findings[0].z, 4.0);
}

TEST(History, NoisyShiftWithinStddevPasses) {
  const Snapshot base = parse_snapshot(sample_result().to_json());
  Snapshot cur = base;
  // Nudge by a fraction of one standard error: above rel_min, below z.
  for (auto& m : cur.cells[0].metrics) {
    if (m.name == "exits") m.mean += 1.0;  // stddev 4, n 3 -> se ~3.3
  }
  EXPECT_TRUE(diff_snapshots(base, cur).clean());
}

TEST(History, ZeroStddevCellFlagsAnyShiftAboveFloor) {
  // --repeat 1 snapshots have stddev 0; the z-score degenerates and the
  // rel_min floor is the only guard. A real shift must still flag.
  Snapshot base = parse_snapshot(sample_result().to_json());
  for (auto& c : base.cells) {
    for (auto& m : c.metrics) m.stddev = 0.0;
  }
  Snapshot cur = base;
  for (auto& m : cur.cells[1].metrics) {
    if (m.name == "busy_cycles") m.mean *= 1.01;  // +1%
  }
  const DiffResult diff = diff_snapshots(base, cur);
  ASSERT_EQ(diff.findings.size(), 1u);
  EXPECT_EQ(diff.findings[0].metric, "busy_cycles");

  // ...but sub-floor jitter (e.g. last-digit formatting) stays clean.
  Snapshot tiny = base;
  for (auto& m : tiny.cells[1].metrics) {
    if (m.name == "busy_cycles") m.mean *= 1.0 + 1e-5;
  }
  EXPECT_TRUE(diff_snapshots(base, tiny).clean());
}

TEST(History, GridDriftIsAFinding) {
  const Snapshot base = parse_snapshot(sample_result().to_json());
  Snapshot cur = base;
  cur.cells.pop_back();
  const DiffResult diff = diff_snapshots(base, cur);
  ASSERT_EQ(diff.findings.size(), 1u);
  EXPECT_EQ(diff.findings[0].kind, DiffFinding::Kind::kCellRemoved);

  DiffConfig relaxed;
  relaxed.grid_must_match = false;
  EXPECT_TRUE(diff_snapshots(base, cur, relaxed).clean());

  // A cell only in `current` is the mirror-image finding.
  Snapshot grown = base;
  grown.cells.push_back(base.cells[0]);
  grown.cells.back().variant = "brand-new";
  const DiffResult diff2 = diff_snapshots(base, grown);
  ASSERT_EQ(diff2.findings.size(), 1u);
  EXPECT_EQ(diff2.findings[0].kind, DiffFinding::Kind::kCellAdded);
}

TEST(History, DescribeNamesEveryFinding) {
  const Snapshot base = parse_snapshot(sample_result().to_json());
  Snapshot cur = base;
  for (auto& m : cur.cells[0].metrics) {
    if (m.name == "timer_exits") m.mean *= 2.0;
  }
  const DiffConfig cfg;
  const std::string text = describe(diff_snapshots(base, cur), cfg);
  EXPECT_NE(text.find("timer_exits"), std::string::npos);
  EXPECT_NE(text.find("SHIFT"), std::string::npos);
}

TEST(History, WriteSnapshotCreatesTaggedFile) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "paratick_history_test";
  std::filesystem::remove_all(dir);

  const SweepResult res = sample_result();
  const std::string path =
      write_history_snapshot(res, dir.string(), "bench_unit", "tag1");
  EXPECT_EQ(path, (dir / "bench_unit" / "tag1.json").string());

  const Snapshot reread = load_snapshot(path);
  ASSERT_EQ(reread.cells.size(), 2u);
  EXPECT_TRUE(diff_snapshots(parse_snapshot(res.to_json()), reread).clean());

  std::filesystem::remove_all(dir);
}

TEST(History, TagNowIsFilenameSafe) {
  const std::string tag = history_tag_now();
  EXPECT_FALSE(tag.empty());
  for (const char c : tag) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_')
        << "character '" << c << "' in tag " << tag;
  }
}

TEST(History, ParserHandlesEscapesAndNumbers) {
  const std::string json =
      "{\n  \"wall_seconds\": 0.5,\n  \"threads\": 1,\n  \"cells\": [\n"
      "    {\"variant\": \"a\\\\b\\\"c\\u0041\", \"mode\": \"paratick\", "
      "\"tick_freq_hz\": 2.5e2, \"vcpus\": 4, \"overcommit\": 0, "
      "\"replicas\": 1, \"exits\": {\"mean\": -1.5e-3, \"stddev\": 0}}\n"
      "  ]\n}\n";
  const Snapshot snap = parse_snapshot(json);
  ASSERT_EQ(snap.cells.size(), 1u);
  EXPECT_EQ(snap.cells[0].variant, "a\\b\"cA");
  EXPECT_DOUBLE_EQ(snap.cells[0].tick_freq_hz, 250.0);
  const SnapshotMetric* exits = snap.cells[0].metric("exits");
  ASSERT_NE(exits, nullptr);
  EXPECT_DOUBLE_EQ(exits->mean, -1.5e-3);
  EXPECT_EQ(exits->n, 1u);
}

}  // namespace
}  // namespace paratick::core
