#include <gtest/gtest.h>

#include <vector>

#include "guest/hrtimer.hpp"

namespace paratick::guest {
namespace {

using sim::SimTime;

TEST(Hrtimer, ExpiresInDeadlineOrder) {
  HrtimerQueue q;
  std::vector<int> order;
  q.add(SimTime::us(30), [&] { order.push_back(3); });
  q.add(SimTime::us(10), [&] { order.push_back(1); });
  q.add(SimTime::us(20), [&] { order.push_back(2); });
  q.expire(SimTime::us(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Hrtimer, OnlyDueTimersExpire) {
  HrtimerQueue q;
  int fired = 0;
  q.add(SimTime::us(10), [&] { ++fired; });
  q.add(SimTime::us(50), [&] { ++fired; });
  q.expire(SimTime::us(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending_count(), 1u);
}

TEST(Hrtimer, BoundaryIsInclusive) {
  HrtimerQueue q;
  bool fired = false;
  q.add(SimTime::us(10), [&] { fired = true; });
  q.expire(SimTime::us(10));
  EXPECT_TRUE(fired);
}

TEST(Hrtimer, CancelById) {
  HrtimerQueue q;
  bool fired = false;
  const auto id = q.add(SimTime::us(5), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  q.expire(SimTime::us(100));
  EXPECT_FALSE(fired);
}

TEST(Hrtimer, NextDeadline) {
  HrtimerQueue q;
  EXPECT_FALSE(q.next_deadline().has_value());
  q.add(SimTime::us(42), [] {});
  q.add(SimTime::us(17), [] {});
  EXPECT_EQ(q.next_deadline(), SimTime::us(17));
}

TEST(Hrtimer, CallbackMayRearm) {
  HrtimerQueue q;
  int fires = 0;
  std::function<void()> cb = [&] {
    if (++fires < 2) q.add(SimTime::us(20), cb);
  };
  q.add(SimTime::us(10), cb);
  q.expire(SimTime::us(15));
  EXPECT_EQ(fires, 1);
  q.expire(SimTime::us(25));
  EXPECT_EQ(fires, 2);
}

TEST(Hrtimer, EqualDeadlinesBothFire) {
  HrtimerQueue q;
  int fired = 0;
  q.add(SimTime::us(5), [&] { ++fired; });
  q.add(SimTime::us(5), [&] { ++fired; });
  q.expire(SimTime::us(5));
  EXPECT_EQ(fired, 2);
}

TEST(Hrtimer, FiredCount) {
  HrtimerQueue q;
  q.add(SimTime::us(1), [] {});
  q.add(SimTime::us(2), [] {});
  q.expire(SimTime::us(10));
  EXPECT_EQ(q.fired_count(), 2u);
}

}  // namespace
}  // namespace paratick::guest
