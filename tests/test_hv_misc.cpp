// Smaller hypervisor pieces: ExitStats bookkeeping, the cost model,
// Vm/Vcpu accessors, and port-contract violations (SimError checks).
#include <gtest/gtest.h>

#include "expect_error.hpp"

#include "hv/cost_model.hpp"
#include "hv/exit_stats.hpp"
#include "hv/kvm.hpp"

namespace paratick::hv {
namespace {

TEST(ExitStats, CountsByCauseAndVm) {
  ExitStats s;
  s.record(hw::ExitCause::kHostTick, 0);
  s.record(hw::ExitCause::kHostTick, 1);
  s.record(hw::ExitCause::kHalt, 1);
  EXPECT_EQ(s.count(hw::ExitCause::kHostTick), 2u);
  EXPECT_EQ(s.count(hw::ExitCause::kHalt), 1u);
  EXPECT_EQ(s.total(), 3u);
  EXPECT_EQ(s.total_for_vm(0), 1u);
  EXPECT_EQ(s.total_for_vm(1), 2u);
  EXPECT_EQ(s.count_for_vm(1, hw::ExitCause::kHalt), 1u);
  EXPECT_EQ(s.count_for_vm(7, hw::ExitCause::kHalt), 0u);  // unknown VM
}

TEST(ExitStats, TimerRelatedSubset) {
  ExitStats s;
  s.record(hw::ExitCause::kGuestTimerArm, 0);
  s.record(hw::ExitCause::kGuestTimerFire, 0);
  s.record(hw::ExitCause::kHalt, 0);
  s.record(hw::ExitCause::kIoKick, 0);
  EXPECT_EQ(s.timer_related(), 2u);
}

TEST(ExitStats, CountReasonAggregatesCauses) {
  ExitStats s;
  s.record(hw::ExitCause::kIoKick, 0);
  s.record(hw::ExitCause::kIoAck, 0);
  EXPECT_EQ(s.count_reason(hw::ExitReason::kIoInstruction), 2u);
  s.record(hw::ExitCause::kGuestTimerArm, 0);
  s.record(hw::ExitCause::kIpiSend, 0);
  EXPECT_EQ(s.count_reason(hw::ExitReason::kMsrWrite), 2u);
}

TEST(ExitCostModel, DirectCostsCoverAllReasons) {
  const ExitCostModel m;
  for (std::size_t r = 0; r < hw::kExitReasonCount; ++r) {
    EXPECT_GT(m.direct_for(static_cast<hw::ExitReason>(r)).count(), 0);
  }
}

TEST(ExitCostModel, TotalAddsIndirect) {
  const ExitCostModel m;
  EXPECT_EQ(m.total_for(hw::ExitReason::kHlt).count(),
            m.hlt.count() + m.indirect.count());
}

TEST(ExitCostModel, PreemptionTimerCheaperThanFullIntercept) {
  // §3: KVM's preemption-timer optimization exists because it is cheaper.
  const ExitCostModel m;
  EXPECT_LT(m.preemption_timer, m.external_interrupt);
}

TEST(VmAccessors, VcpuIndexingAndIds) {
  sim::Engine engine;
  hw::Machine machine(hw::MachineSpec::small(4));
  Kvm kvm(engine, machine, HostConfig{});
  VmConfig c1;
  c1.vcpus = 2;
  Vm& vm1 = kvm.create_vm(c1);
  Vm& vm2 = kvm.create_vm(c1);
  EXPECT_EQ(vm1.id(), 0u);
  EXPECT_EQ(vm2.id(), 1u);
  EXPECT_EQ(vm1.vcpu_count(), 2);
  EXPECT_EQ(vm1.vcpu(1).index_in_vm(), 1);
  EXPECT_EQ(vm1.vcpu(1).vm(), &vm1);
  // Global vCPU ids are unique across VMs.
  EXPECT_NE(vm1.vcpu(1).id(), vm2.vcpu(1).id());
  // Home pCPUs spread round-robin.
  EXPECT_EQ(vm1.vcpu(0).home_pcpu, 0u);
  EXPECT_EQ(vm1.vcpu(1).home_pcpu, 1u);
  EXPECT_EQ(vm2.vcpu(0).home_pcpu, 2u);
}

TEST(VmDeath, PinnedModeRejectsOvercommit) {
  sim::Engine engine;
  hw::Machine machine(hw::MachineSpec::small(2));
  Kvm kvm(engine, machine, HostConfig{});
  VmConfig c;
  c.vcpus = 3;
  EXPECT_SIM_ERROR((void)kvm.create_vm(c), "more vCPUs than physical CPUs");
}

TEST(VmDeath, PinningOutOfRangeRejected) {
  sim::Engine engine;
  hw::Machine machine(hw::MachineSpec::small(2));
  Kvm kvm(engine, machine, HostConfig{});
  VmConfig c;
  c.vcpus = 1;
  c.pinning = {9};
  EXPECT_SIM_ERROR((void)kvm.create_vm(c), "pinning out of range");
}

TEST(PortContractDeath, PowerOnWithoutGuestAborts) {
  sim::Engine engine;
  hw::Machine machine(hw::MachineSpec::small(1));
  Kvm kvm(engine, machine, HostConfig{});
  VmConfig c;
  c.vcpus = 1;
  kvm.create_vm(c);
  EXPECT_SIM_ERROR(kvm.power_on_all(), "no attached guest");
}

TEST(VcpuState, NamesAreMeaningful) {
  EXPECT_EQ(to_string(VcpuState::kInGuest), "in-guest");
  EXPECT_EQ(to_string(VcpuState::kHalted), "halted");
  EXPECT_EQ(to_string(VcpuState::kHaltPolling), "halt-polling");
  EXPECT_EQ(to_string(VcpuState::kReady), "ready");
}

TEST(HostConfig, PaperDefaults) {
  // The §6 evaluation setup: halt polling and PLE disabled, pinned vCPUs,
  // 250 Hz host tick.
  const HostConfig config;
  EXPECT_FALSE(config.halt_polling);
  EXPECT_FALSE(config.pause_loop_exiting);
  EXPECT_EQ(config.sched_mode, SchedMode::kPinned);
  EXPECT_EQ(config.host_tick_freq.period(), sim::SimTime::ms(4));
}

}  // namespace
}  // namespace paratick::hv
