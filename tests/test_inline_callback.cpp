#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>

#include "sim/inline_callback.hpp"

namespace paratick::sim {
namespace {

TEST(InlineCallback, DefaultIsInvalid) {
  InlineCallback cb;
  EXPECT_FALSE(cb.valid());
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_TRUE(cb == nullptr);
  InlineCallback null_cb = nullptr;
  EXPECT_FALSE(null_cb.valid());
}

TEST(InlineCallback, InvokesStoredLambda) {
  int hits = 0;
  InlineCallback cb = [&hits] { ++hits; };
  ASSERT_TRUE(cb.valid());
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, CapturesUpToCapacityInline) {
  // A capture of exactly kCapacity bytes must fit without spilling; this
  // is the static boundary the hv continuations sit right at.
  struct Payload {
    unsigned char bytes[InlineCallback::kCapacity - sizeof(void*)] = {};
    int* out;
  };
  static_assert(sizeof(Payload) == InlineCallback::kCapacity);
  int sum = 0;
  Payload p{.out = &sum};
  p.bytes[0] = 7;
  p.bytes[sizeof(p.bytes) - 1] = 35;
  InlineCallback cb = [p] { *p.out = p.bytes[0] + p.bytes[sizeof(p.bytes) - 1]; };
  EXPECT_FALSE(cb.spilled());
  EXPECT_EQ(cb.spill_bytes(), 0u);
  cb();
  EXPECT_EQ(sum, 42);
}

TEST(InlineCallback, OversizedCaptureDoesNotConvert) {
  // The no-heap-fallback contract, checked at the type level: a lambda
  // whose capture exceeds kCapacity is rejected by the static_assert in
  // the converting constructor, so the only way to build one is spill().
  struct Big {
    unsigned char bytes[InlineCallback::kCapacity + 8] = {};
  };
  static_assert(sizeof(Big) > InlineCallback::kCapacity);
  // (Compile-time property; instantiating the negative case would be a
  // build error by design. What we can check here is that spill() accepts
  // it and reports its true size.)
  Big big;
  big.bytes[3] = 9;
  int out = 0;
  InlineCallback cb = InlineCallback::spill([big, &out] { out = big.bytes[3]; });
  EXPECT_TRUE(cb.spilled());
  EXPECT_GE(cb.spill_bytes(), sizeof(Big));
  cb();
  EXPECT_EQ(out, 9);
}

TEST(InlineCallback, MoveTransfersOwnership) {
  int hits = 0;
  InlineCallback a = [&hits] { ++hits; };
  InlineCallback b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): asserting the moved-from state
  ASSERT_TRUE(b.valid());
  b();
  EXPECT_EQ(hits, 1);

  InlineCallback c;
  c = std::move(b);
  EXPECT_FALSE(b.valid());  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, MoveAssignDestroysPreviousTarget) {
  // The old callable (and anything it owns) must be released on overwrite.
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  InlineCallback holder = [token] { (void)token; };
  token.reset();
  EXPECT_FALSE(watch.expired());  // alive inside holder
  holder = InlineCallback{[] {}};
  EXPECT_TRUE(watch.expired());
}

TEST(InlineCallback, MoveOnlyCallablesAreSupported) {
  auto owned = std::make_unique<int>(11);
  int out = 0;
  InlineCallback cb = [owned = std::move(owned), &out] { out = *owned; };
  InlineCallback moved = std::move(cb);
  moved();
  EXPECT_EQ(out, 11);
}

TEST(InlineCallback, ResetReleasesTheCallable) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  InlineCallback cb = [token] { (void)token; };
  token.reset();
  cb.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(cb.valid());
}

TEST(InlineCallback, SpilledCallableSurvivesMoves) {
  struct Big {
    unsigned char bytes[128] = {};
  };
  Big big;
  big.bytes[100] = 5;
  int out = 0;
  InlineCallback a = InlineCallback::spill([big, &out] { out = big.bytes[100]; });
  InlineCallback b = std::move(a);
  InlineCallback c;
  c = std::move(b);
  EXPECT_TRUE(c.spilled());
  EXPECT_GE(c.spill_bytes(), sizeof(Big));
  c();
  EXPECT_EQ(out, 5);
}

TEST(InlineCallback, ObjectStaysCompact) {
  // One vtable-ish pointer + the buffer: the whole point is that a slot
  // map of these is allocation-free and cache-dense.
  static_assert(sizeof(InlineCallback) <= InlineCallback::kCapacity + 2 * sizeof(void*));
  static_assert(!std::is_copy_constructible_v<InlineCallback>);
  static_assert(std::is_nothrow_move_constructible_v<InlineCallback>);
}

}  // namespace
}  // namespace paratick::sim
