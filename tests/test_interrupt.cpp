#include <gtest/gtest.h>

#include "hw/interrupt.hpp"

namespace paratick::hw {
namespace {

TEST(InterruptController, StartsEmpty) {
  InterruptController ic;
  EXPECT_FALSE(ic.any_pending());
  EXPECT_EQ(ic.pending_count(), 0u);
  EXPECT_FALSE(ic.highest_pending().has_value());
  EXPECT_FALSE(ic.ack().has_value());
}

TEST(InterruptController, RaiseAndAck) {
  InterruptController ic;
  EXPECT_TRUE(ic.raise(vectors::kLocalTimer));
  EXPECT_TRUE(ic.pending(vectors::kLocalTimer));
  EXPECT_EQ(ic.ack(), vectors::kLocalTimer);
  EXPECT_FALSE(ic.any_pending());
}

TEST(InterruptController, RaiseTwiceCoalesces) {
  InterruptController ic;
  EXPECT_TRUE(ic.raise(10));
  EXPECT_FALSE(ic.raise(10));
  EXPECT_EQ(ic.pending_count(), 1u);
}

TEST(InterruptController, HigherVectorHasPriority) {
  InterruptController ic;
  ic.raise(vectors::kParatick);     // 235
  ic.raise(vectors::kLocalTimer);   // 236
  ic.raise(vectors::kBlockDevice);  // 96
  EXPECT_EQ(ic.ack(), vectors::kLocalTimer);
  EXPECT_EQ(ic.ack(), vectors::kParatick);
  EXPECT_EQ(ic.ack(), vectors::kBlockDevice);
}

TEST(InterruptController, VectorsInEveryWord) {
  InterruptController ic;
  for (Vector v : {Vector{3}, Vector{70}, Vector{130}, Vector{200}, Vector{255}}) {
    ic.raise(v);
  }
  EXPECT_EQ(ic.pending_count(), 5u);
  EXPECT_EQ(ic.ack(), Vector{255});
  EXPECT_EQ(ic.ack(), Vector{200});
  EXPECT_EQ(ic.ack(), Vector{130});
  EXPECT_EQ(ic.ack(), Vector{70});
  EXPECT_EQ(ic.ack(), Vector{3});
}

TEST(InterruptController, ClearSpecificVector) {
  InterruptController ic;
  ic.raise(5);
  ic.raise(9);
  ic.clear(9);
  EXPECT_FALSE(ic.pending(9));
  EXPECT_TRUE(ic.pending(5));
}

TEST(InterruptController, ClearAll) {
  InterruptController ic;
  ic.raise(1);
  ic.raise(128);
  ic.clear_all();
  EXPECT_FALSE(ic.any_pending());
}

TEST(InterruptController, HighestPendingDoesNotClear) {
  InterruptController ic;
  ic.raise(44);
  EXPECT_EQ(ic.highest_pending(), Vector{44});
  EXPECT_TRUE(ic.pending(44));
}

TEST(Vectors, ParatickReservesVector235) {
  // §5.1: "We reserve vector 235 for this purpose."
  EXPECT_EQ(vectors::kParatick, 235);
  EXPECT_EQ(vectors::kLocalTimer, 236);
  EXPECT_GT(vectors::kLocalTimer, vectors::kParatick);
}

}  // namespace
}  // namespace paratick::hw
