// Hypervisor run-loop tests: exits, entries, injection, halt/wake, the
// paratick host hook (Figure 2), host ticks, halt polling, overcommit
// scheduling and the virtio backend — all against a scripted stub guest.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "hv/kvm.hpp"
#include "hw/block_device.hpp"

namespace paratick::hv {
namespace {

using sim::Cycles;
using sim::SimTime;

class StubGuest final : public GuestCpuIface {
 public:
  VcpuPort* port = nullptr;
  std::function<void(StubGuest&)> on_power_on;             // default: halt
  std::function<void(StubGuest&, hw::Vector)> on_irq;      // default: iret
  std::function<void(StubGuest&)> on_idle;                 // default: halt

  std::vector<hw::Vector> irqs;
  int power_ons = 0;
  int idle_resumes = 0;

  void power_on() override {
    ++power_ons;
    if (on_power_on) {
      on_power_on(*this);
    } else {
      port->hlt();
    }
  }
  void handle_interrupt(hw::Vector v) override {
    irqs.push_back(v);
    if (on_irq) {
      on_irq(*this, v);
    } else {
      port->iret();
    }
  }
  void idle_resume() override {
    ++idle_resumes;
    if (on_idle) {
      on_idle(*this);
    } else {
      port->hlt();
    }
  }
};

class KvmTest : public ::testing::Test {
 protected:
  void build(int pcpus, int vcpus, HostConfig config = {}) {
    machine_.emplace(hw::MachineSpec::small(static_cast<std::uint32_t>(pcpus)));
    kvm_.emplace(engine_, *machine_, config);
    VmConfig vconf;
    vconf.vcpus = vcpus;
    vm_ = &kvm_->create_vm(vconf);
    guests_.resize(static_cast<std::size_t>(vcpus));
    for (int i = 0; i < vcpus; ++i) {
      auto& g = guests_[static_cast<std::size_t>(i)];
      g.port = &kvm_->port(vm_->vcpu(i));
      kvm_->attach_guest(vm_->vcpu(i), &g);
    }
  }

  StubGuest& guest(int i = 0) { return guests_[static_cast<std::size_t>(i)]; }
  Vcpu& vcpu(int i = 0) { return vm_->vcpu(i); }

  sim::Engine engine_;
  std::optional<hw::Machine> machine_;
  std::optional<Kvm> kvm_;
  Vm* vm_ = nullptr;
  std::vector<StubGuest> guests_;
};

TEST_F(KvmTest, PowerOnReachesGuest) {
  build(1, 1);
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(1));
  EXPECT_EQ(guest().power_ons, 1);
  EXPECT_EQ(vcpu().state, VcpuState::kHalted);
}

TEST_F(KvmTest, RunConsumesTimeAndChargesCycles) {
  build(1, 1);
  SimTime finished;
  guest().on_power_on = [&](StubGuest& g) {
    g.port->run(Cycles{200'000}, hw::CycleCategory::kGuestUser, [&, &g = g] {
      finished = g.port->now();
      g.port->hlt();
    });
  };
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(5));
  // 200k cycles at 2 GHz = 100 us (plus boot/exit costs).
  EXPECT_GE(finished, SimTime::us(100));
  EXPECT_LT(finished, SimTime::us(200));
  EXPECT_GE(machine_->cpu(0).ledger().total(hw::CycleCategory::kGuestUser).count(),
            200'000);
}

TEST_F(KvmTest, MsrWriteCostsTimerArmExitAndArmsTimer) {
  build(1, 1);
  guest().on_power_on = [&](StubGuest& g) {
    g.port->write_tsc_deadline(SimTime::ms(2), [&g] { g.port->hlt(); });
  };
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(1));
  EXPECT_EQ(kvm_->exits().count(hw::ExitCause::kGuestTimerArm), 1u);
  EXPECT_EQ(vcpu().guest_deadline, SimTime::ms(2));
}

TEST_F(KvmTest, TimerFireWakesHaltedVcpuWithLocalTimerVector) {
  build(1, 1);
  guest().on_power_on = [&](StubGuest& g) {
    g.port->write_tsc_deadline(SimTime::ms(2), [&g] { g.port->hlt(); });
  };
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(3));
  ASSERT_EQ(guest().irqs.size(), 1u);
  EXPECT_EQ(guest().irqs[0], hw::vectors::kLocalTimer);
  EXPECT_EQ(vcpu().wakeups, 1u);
}

TEST_F(KvmTest, TimerFireWhileRunningIsPreemptionTimerExit) {
  build(1, 1);
  guest().on_power_on = [&](StubGuest& g) {
    g.port->write_tsc_deadline(SimTime::us(50), [&g] {
      // Long busy segment so the deadline hits while running.
      g.port->run(Cycles{1'000'000}, hw::CycleCategory::kGuestUser,
                  [&g] { g.port->hlt(); });
    });
  };
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(2));
  EXPECT_EQ(kvm_->exits().count(hw::ExitCause::kGuestTimerFire), 1u);
  ASSERT_GE(guest().irqs.size(), 1u);
  EXPECT_EQ(guest().irqs[0], hw::vectors::kLocalTimer);
}

TEST_F(KvmTest, InterruptedSegmentResumesAndCompletes) {
  build(1, 1);
  static bool completed;
  completed = false;
  guest().on_power_on = [&](StubGuest& g) {
    g.port->write_tsc_deadline(SimTime::us(50), [&g] {
      g.port->run(Cycles{1'000'000}, hw::CycleCategory::kGuestUser, [&g] {
        completed = true;
        g.port->hlt();
      });
    });
  };
  // default irq handler irets, which must resume the interrupted segment
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(2));
  EXPECT_TRUE(completed);
  // Full 1M cycles were charged despite the interruption.
  EXPECT_GE(machine_->cpu(0).ledger().total(hw::CycleCategory::kGuestUser).count(),
            1'000'000);
}

TEST_F(KvmTest, HltWithPendingVectorReturnsImmediately) {
  build(1, 1);
  guest().on_power_on = [&](StubGuest& g) {
    g.port->run(Cycles{2000}, hw::CycleCategory::kGuestUser, [&g] { g.port->hlt(); });
  };
  // Raise a vector while the vCPU is inside the HLT exit window (~8 us
  // after the ~2.7 us boot+segment): HLT must return without sleeping.
  engine_.schedule_at(SimTime::us(5), [&] {
    ASSERT_EQ(vcpu().state, VcpuState::kInHost);
    kvm_->deliver_interrupt(vcpu(), 99, hw::ExitCause::kWakeIpi);
  });
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(1));
  ASSERT_GE(guest().irqs.size(), 1u);
  EXPECT_EQ(guest().irqs[0], 99);
  EXPECT_EQ(vcpu().wakeups, 0u);  // never actually slept
}

TEST_F(KvmTest, HostTickExitsAccrueWhileRunning) {
  build(1, 1);
  guest().on_power_on = [&](StubGuest& g) {
    g.port->run(Cycles{40'000'000}, hw::CycleCategory::kGuestUser,  // 20 ms busy
                [&g] { g.port->hlt(); });
  };
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(25));
  // 250 Hz host tick over ~20 ms busy: ~5 exits.
  const auto ticks = kvm_->exits().count(hw::ExitCause::kHostTick);
  EXPECT_GE(ticks, 3u);
  EXPECT_LE(ticks, 7u);
}

TEST_F(KvmTest, NoHostTickWhileHalted) {
  build(1, 1);
  kvm_->power_on_all();
  engine_.run_until(SimTime::sec(1));
  EXPECT_LE(kvm_->exits().count(hw::ExitCause::kHostTick), 1u);
}

TEST_F(KvmTest, ParatickHookInjectsVector235AtTickRate) {
  build(1, 1);
  guest().on_power_on = [&](StubGuest& g) {
    HypercallRequest req;
    req.enable_paratick = true;
    req.guest_tick_period = SimTime::ms(4);
    g.port->hypercall(req, [&g] {
      g.port->run(Cycles{40'000'000}, hw::CycleCategory::kGuestUser,  // 20 ms
                  [&g] { g.port->hlt(); });
    });
  };
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(30));
  EXPECT_EQ(kvm_->exits().count(hw::ExitCause::kHypercall), 1u);
  int paraticks = 0;
  for (auto v : guest().irqs) paraticks += v == hw::vectors::kParatick ? 1 : 0;
  // ~20 ms running at 250 Hz -> ~5 virtual ticks, injected at entries.
  EXPECT_GE(paraticks, 3);
  EXPECT_LE(paraticks, 7);
}

TEST_F(KvmTest, ParatickPendingLocalTimerSuppressesInjection) {
  build(1, 1);
  // §5.1: if a local timer interrupt is about to be injected, it counts as
  // the tick (last_tick updated, no vector 235).
  guest().on_power_on = [&](StubGuest& g) {
    HypercallRequest req;
    req.enable_paratick = true;
    req.guest_tick_period = SimTime::ms(4);
    g.port->hypercall(req, [&g] {
      g.port->write_tsc_deadline(g.port->now() + SimTime::ms(5),
                                 [&g] { g.port->hlt(); });
    });
  };
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(10));
  ASSERT_FALSE(guest().irqs.empty());
  EXPECT_EQ(guest().irqs[0], hw::vectors::kLocalTimer);
  // last_tick was refreshed by the heuristic at that entry.
  EXPECT_GE(vcpu().last_tick, SimTime::ms(5));
  for (auto v : guest().irqs) EXPECT_NE(v, hw::vectors::kParatick);
}

TEST_F(KvmTest, IdleParatickVcpuGetsNoVirtualTicks) {
  build(1, 1);
  guest().on_power_on = [&](StubGuest& g) {
    HypercallRequest req;
    req.enable_paratick = true;
    g.port->hypercall(req, [&g] { g.port->hlt(); });
  };
  kvm_->power_on_all();
  engine_.run_until(SimTime::sec(1));
  for (auto v : guest().irqs) EXPECT_NE(v, hw::vectors::kParatick);
}

TEST_F(KvmTest, AuxTimerBacksIncompatibleFrequencies) {
  HostConfig config;
  config.host_tick_freq = sim::Frequency{300.0};  // not a multiple of 250
  build(1, 1, config);
  guest().on_power_on = [&](StubGuest& g) {
    HypercallRequest req;
    req.enable_paratick = true;
    req.guest_tick_period = SimTime::ms(4);
    g.port->hypercall(req, [&g] {
      g.port->run(Cycles{80'000'000}, hw::CycleCategory::kGuestUser,  // 40 ms
                  [&g] { g.port->hlt(); });
    });
  };
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(50));
  EXPECT_GT(kvm_->exits().count(hw::ExitCause::kAuxParatickTimer), 0u);
  int paraticks = 0;
  for (auto v : guest().irqs) paraticks += v == hw::vectors::kParatick ? 1 : 0;
  // Still roughly one virtual tick per 4 ms of running time.
  EXPECT_GE(paraticks, 8);
  EXPECT_LE(paraticks, 12);
}

TEST_F(KvmTest, IpiSendCostsExitAndWakesTarget) {
  build(2, 2);
  guest(1).on_power_on = [](StubGuest& g) { g.port->hlt(); };
  guest(0).on_power_on = [&](StubGuest& g) {
    g.port->send_ipi(1, hw::vectors::kRescheduleIpi, [&g] { g.port->hlt(); });
  };
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(1));
  EXPECT_EQ(kvm_->exits().count(hw::ExitCause::kIpiSend), 1u);
  ASSERT_FALSE(guest(1).irqs.empty());
  EXPECT_EQ(guest(1).irqs[0], hw::vectors::kRescheduleIpi);
}

TEST_F(KvmTest, IpiToRunningTargetCausesWakeIpiExit) {
  build(2, 2);
  guest(1).on_power_on = [](StubGuest& g) {
    g.port->run(Cycles{10'000'000}, hw::CycleCategory::kGuestUser,
                [&g] { g.port->hlt(); });
  };
  guest(0).on_power_on = [&](StubGuest& g) {
    g.port->run(Cycles{100'000}, hw::CycleCategory::kGuestUser, [&, &g = g] {
      g.port->send_ipi(1, hw::vectors::kRescheduleIpi, [&g] { g.port->hlt(); });
    });
  };
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(10));
  EXPECT_EQ(kvm_->exits().count(hw::ExitCause::kWakeIpi), 1u);
}

TEST_F(KvmTest, BlockIoRoundTrip) {
  build(1, 1);
  hw::BlockDevice disk(engine_, hw::BlockDeviceSpec::sata_ssd(), sim::Rng{5});
  kvm_->attach_block_device(*vm_, disk);

  std::vector<hw::IoRequest> drained;
  guest().on_irq = [&](StubGuest& g, hw::Vector v) {
    if (v == hw::vectors::kBlockDevice) {
      auto got = g.port->drain_io_completions();
      drained.insert(drained.end(), got.begin(), got.end());
    }
    g.port->iret();
  };
  guest().on_power_on = [&](StubGuest& g) {
    hw::IoRequest req;
    req.bytes = 4096;
    req.cookie = 4242;  // guest cookie must round-trip through the backend
    g.port->io_submit(req, [&g] { g.port->hlt(); });
  };
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(5));
  EXPECT_EQ(kvm_->exits().count(hw::ExitCause::kIoKick), 1u);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].cookie, 4242u);
}

TEST_F(KvmTest, HaltPollingAvoidsScheduleOutForFastWakes) {
  HostConfig config;
  config.halt_polling = true;
  config.halt_poll_window = SimTime::us(200);
  build(1, 1, config);
  guest().on_power_on = [&](StubGuest& g) {
    g.port->write_tsc_deadline(g.port->now() + SimTime::us(50),
                               [&g] { g.port->hlt(); });
  };
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(1));
  ASSERT_FALSE(guest().irqs.empty());
  // Wake arrived within the poll window: cycles were burned polling...
  EXPECT_GT(machine_->cpu(0).ledger().total(hw::CycleCategory::kHaltPoll).count(), 0);
  // ...and the wake did not go through the scheduler (no halted wakeup).
  EXPECT_EQ(vcpu().wakeups, 1u);
}

TEST_F(KvmTest, HaltPollWindowExpiryReleasesCpu) {
  HostConfig config;
  config.halt_polling = true;
  config.halt_poll_window = SimTime::us(100);
  build(1, 1, config);
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(2));
  EXPECT_EQ(vcpu().state, VcpuState::kHalted);
  const auto polled =
      machine_->cpu(0).ledger().total(hw::CycleCategory::kHaltPoll).count();
  EXPECT_NEAR(static_cast<double>(polled), 200'000.0, 2000.0);  // 100 us at 2 GHz
}

TEST_F(KvmTest, SharedModeRunsMoreVcpusThanCpus) {
  HostConfig config;
  config.sched_mode = SchedMode::kShared;
  config.timeslice = SimTime::ms(2);
  build(1, 3, config);
  std::vector<bool> finished(3, false);
  for (int i = 0; i < 3; ++i) {
    guest(i).on_power_on = [&, i](StubGuest& g) {
      g.port->run(Cycles{8'000'000}, hw::CycleCategory::kGuestUser, [&, i, &g = g] {
        finished[static_cast<std::size_t>(i)] = true;
        g.port->hlt();
      });
    };
  }
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(40));
  EXPECT_TRUE(finished[0]);
  EXPECT_TRUE(finished[1]);
  EXPECT_TRUE(finished[2]);
}

TEST_F(KvmTest, SharedModePreemptsOnTimeslice) {
  HostConfig config;
  config.sched_mode = SchedMode::kShared;
  config.timeslice = SimTime::ms(1);
  build(1, 2, config);
  SimTime second_started;
  guest(0).on_power_on = [&](StubGuest& g) {
    g.port->run(Cycles{20'000'000}, hw::CycleCategory::kGuestUser,  // 10 ms
                [&g] { g.port->hlt(); });
  };
  guest(1).on_power_on = [&](StubGuest& g) {
    second_started = g.port->now();
    g.port->hlt();
  };
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(30));
  // vCPU 1 must have been scheduled long before vCPU 0's 10 ms burst ended.
  EXPECT_LT(second_started, SimTime::ms(8));
  EXPECT_GT(second_started, SimTime::zero());
}

TEST_F(KvmTest, ExitStatsTrackPerVm) {
  build(2, 1);
  VmConfig vconf2;
  vconf2.vcpus = 1;
  Vm& vm2 = kvm_->create_vm(vconf2);
  StubGuest g2;
  g2.port = &kvm_->port(vm2.vcpu(0));
  kvm_->attach_guest(vm2.vcpu(0), &g2);

  guest(0).on_power_on = [&](StubGuest& g) {
    g.port->background_exit([&g] { g.port->hlt(); });
  };
  g2.on_power_on = [&](StubGuest& g) {
    g.port->background_exit([&g] {
      g.port->background_exit([&g] { g.port->hlt(); });
    });
  };
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(1));
  EXPECT_EQ(kvm_->exits().count_for_vm(0, hw::ExitCause::kBackground), 1u);
  EXPECT_EQ(kvm_->exits().count_for_vm(1, hw::ExitCause::kBackground), 2u);
  EXPECT_EQ(kvm_->exits().count(hw::ExitCause::kBackground), 3u);
}

TEST_F(KvmTest, ChainedInterruptsDeliverBackToBack) {
  build(1, 1);
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(1));
  ASSERT_EQ(vcpu().state, VcpuState::kHalted);
  // Two vectors wake the sleeping vCPU; both must be delivered at the same
  // entry, higher vector first, second one chained at iret.
  kvm_->deliver_interrupt(vcpu(), 50, hw::ExitCause::kWakeIpi);
  kvm_->deliver_interrupt(vcpu(), 60, hw::ExitCause::kWakeIpi);
  engine_.run_until(SimTime::ms(2));
  ASSERT_EQ(guest().irqs.size(), 2u);
  EXPECT_EQ(guest().irqs[0], 60);  // higher vector first
  EXPECT_EQ(guest().irqs[1], 50);
  EXPECT_EQ(vcpu().wakeups, 1u);  // one wake covered both
}

TEST_F(KvmTest, PleDisabledSpinsWithoutPauseExits) {
  build(1, 1);
  guest().on_power_on = [&](StubGuest& g) {
    g.port->spin(Cycles{100'000}, [&g] { g.port->hlt(); });
  };
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(1));
  EXPECT_EQ(kvm_->exits().count(hw::ExitCause::kPauseLoop), 0u);
}

TEST_F(KvmTest, PleEnabledAddsPauseExitsForLongSpins) {
  HostConfig config;
  config.pause_loop_exiting = true;
  config.ple_window = Cycles{8192};
  build(1, 1, config);
  guest().on_power_on = [&](StubGuest& g) {
    g.port->spin(Cycles{100'000}, [&g] { g.port->hlt(); });
  };
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(2));
  const auto ple = kvm_->exits().count(hw::ExitCause::kPauseLoop);
  EXPECT_GE(ple, 10u);  // ~100k / 8192
  EXPECT_LE(ple, 13u);
}

TEST_F(KvmTest, DisarmingDeadlineCancelsTimer) {
  build(1, 1);
  guest().on_power_on = [&](StubGuest& g) {
    g.port->write_tsc_deadline(SimTime::ms(1), [&g] {
      g.port->write_tsc_deadline(std::nullopt, [&g] { g.port->hlt(); });
    });
  };
  kvm_->power_on_all();
  engine_.run_until(SimTime::ms(5));
  EXPECT_TRUE(guest().irqs.empty());  // never fired
  EXPECT_FALSE(vcpu().guest_deadline.has_value());
}

}  // namespace
}  // namespace paratick::hv
