#include <gtest/gtest.h>

#include "expect_error.hpp"

#include "hw/machine.hpp"

namespace paratick::hw {
namespace {

TEST(MachineSpec, PaperTestbedShape) {
  const MachineSpec spec = MachineSpec::paper_testbed();
  EXPECT_EQ(spec.sockets, 4u);
  EXPECT_EQ(spec.cpus_per_socket, 20u);
  EXPECT_EQ(spec.total_cpus(), 80u);
}

TEST(MachineSpec, SmallHelper) {
  const MachineSpec spec = MachineSpec::small(6);
  EXPECT_EQ(spec.sockets, 1u);
  EXPECT_EQ(spec.total_cpus(), 6u);
}

TEST(Machine, CpuIdentityAndSockets) {
  Machine m(MachineSpec{2, 3, sim::CpuFrequency{2.0}, sim::SimTime::ns(300)});
  ASSERT_EQ(m.cpu_count(), 6u);
  for (CpuId i = 0; i < 6; ++i) {
    EXPECT_EQ(m.cpu(i).id(), i);
    EXPECT_EQ(m.cpu(i).socket(), i / 3);
  }
  EXPECT_TRUE(m.same_socket(0, 2));
  EXPECT_FALSE(m.same_socket(2, 3));
}

TEST(Machine, ChargeTimeConvertsToCycles) {
  Machine m(MachineSpec::small(1));
  m.cpu(0).charge_time(CycleCategory::kGuestUser, sim::SimTime::us(1));
  EXPECT_EQ(m.cpu(0).ledger().total(CycleCategory::kGuestUser).count(), 2000);
}

TEST(CycleLedger, BusyExcludesIdle) {
  CycleLedger l;
  l.charge(CycleCategory::kGuestUser, sim::Cycles{100});
  l.charge(CycleCategory::kExitOverhead, sim::Cycles{30});
  l.charge(CycleCategory::kIdle, sim::Cycles{1000});
  EXPECT_EQ(l.busy_total().count(), 130);
  EXPECT_EQ(l.grand_total().count(), 1130);
}

TEST(CycleLedger, MergeSumsCategories) {
  CycleLedger a, b;
  a.charge(CycleCategory::kHostKernel, sim::Cycles{5});
  b.charge(CycleCategory::kHostKernel, sim::Cycles{7});
  b.charge(CycleCategory::kHaltPoll, sim::Cycles{2});
  a.merge(b);
  EXPECT_EQ(a.total(CycleCategory::kHostKernel).count(), 12);
  EXPECT_EQ(a.total(CycleCategory::kHaltPoll).count(), 2);
}

TEST(Machine, CombinedLedgerAggregates) {
  Machine m(MachineSpec::small(3));
  m.cpu(0).charge_cycles(CycleCategory::kGuestUser, sim::Cycles{10});
  m.cpu(1).charge_cycles(CycleCategory::kGuestUser, sim::Cycles{20});
  m.cpu(2).charge_cycles(CycleCategory::kGuestKernel, sim::Cycles{5});
  const CycleLedger combined = m.combined_ledger();
  EXPECT_EQ(combined.total(CycleCategory::kGuestUser).count(), 30);
  EXPECT_EQ(combined.total(CycleCategory::kGuestKernel).count(), 5);
}

TEST(CycleCategory, NamesAreDistinct) {
  EXPECT_EQ(to_string(CycleCategory::kGuestUser), "guest-user");
  EXPECT_EQ(to_string(CycleCategory::kExitOverhead), "exit-overhead");
  EXPECT_EQ(to_string(CycleCategory::kIdle), "idle");
}

TEST(MachineDeath, ZeroCpusRejected) {
  EXPECT_SIM_ERROR(Machine(MachineSpec{0, 0, sim::CpuFrequency{2.0}, {}}),
               "at least one CPU");
}

}  // namespace
}  // namespace paratick::hw
