#include <gtest/gtest.h>

#include "expect_error.hpp"

#include "metrics/report.hpp"
#include "metrics/run_metrics.hpp"

namespace paratick::metrics {
namespace {

RunResult make_result(std::uint64_t exits, std::int64_t busy_cycles,
                      std::optional<sim::SimTime> completion) {
  RunResult r;
  r.wall = sim::SimTime::sec(1);
  r.exits_total = exits;
  r.exits_timer_related = exits / 2;
  r.cycles.charge(hw::CycleCategory::kGuestUser, sim::Cycles{busy_cycles});
  VmResult vm;
  vm.exits_total = exits;
  vm.completion_time = completion;
  r.vms.push_back(vm);
  return r;
}

TEST(Compare, ExitReductionSign) {
  const auto base = make_result(1000, 1'000'000, sim::SimTime::ms(100));
  const auto treat = make_result(600, 1'000'000, sim::SimTime::ms(100));
  const Comparison c = compare(base, treat);
  EXPECT_NEAR(c.exit_delta_pct, -40.0, 1e-9);
}

TEST(Compare, ThroughputGainFromFewerCycles) {
  const auto base = make_result(1000, 1'200'000, sim::SimTime::ms(100));
  const auto treat = make_result(1000, 1'000'000, sim::SimTime::ms(100));
  const Comparison c = compare(base, treat);
  EXPECT_NEAR(c.throughput_gain_pct, 20.0, 1e-9);  // base/treat - 1
}

TEST(Compare, ExecTimeDelta) {
  const auto base = make_result(1000, 1'000'000, sim::SimTime::ms(100));
  const auto treat = make_result(1000, 1'000'000, sim::SimTime::ms(90));
  const Comparison c = compare(base, treat);
  EXPECT_NEAR(c.exec_time_delta_pct, -10.0, 1e-9);
}

TEST(Compare, MissingCompletionLeavesTimeZero) {
  const auto base = make_result(10, 100, std::nullopt);
  const auto treat = make_result(10, 100, sim::SimTime::ms(5));
  EXPECT_DOUBLE_EQ(compare(base, treat).exec_time_delta_pct, 0.0);
}

TEST(Compare, ZeroBaselineExitsSafe) {
  const auto base = make_result(0, 100, std::nullopt);
  const auto treat = make_result(5, 100, std::nullopt);
  EXPECT_DOUBLE_EQ(compare(base, treat).exit_delta_pct, 0.0);
}

TEST(Average, MeansComponentWise) {
  Comparison a{-10.0, -20.0, 5.0, -1.0};
  Comparison b{-30.0, -40.0, 15.0, -3.0};
  const Comparison avg = average({a, b});
  EXPECT_DOUBLE_EQ(avg.exit_delta_pct, -20.0);
  EXPECT_DOUBLE_EQ(avg.timer_exit_delta_pct, -30.0);
  EXPECT_DOUBLE_EQ(avg.throughput_gain_pct, 10.0);
  EXPECT_DOUBLE_EQ(avg.exec_time_delta_pct, -2.0);
}

TEST(Average, EmptyIsZero) {
  const Comparison avg = average({});
  EXPECT_DOUBLE_EQ(avg.exit_delta_pct, 0.0);
}

TEST(RunResult, CompletionTimeIsLatestVm) {
  RunResult r;
  VmResult a, b;
  a.completion_time = sim::SimTime::ms(10);
  b.completion_time = sim::SimTime::ms(30);
  r.vms = {a, b};
  EXPECT_EQ(r.completion_time(), sim::SimTime::ms(30));
}

TEST(RunResult, CompletionTimeMissingWhenAnyVmUnfinished) {
  RunResult r;
  VmResult a;
  a.completion_time = sim::SimTime::ms(10);
  r.vms = {a, VmResult{}};
  // One VM finished: the latest finished time is still reported.
  EXPECT_EQ(r.completion_time(), sim::SimTime::ms(10));
}

TEST(RunResult, ExitsPerSecond) {
  auto r = make_result(5000, 1, sim::SimTime::ms(1));
  EXPECT_DOUBLE_EQ(r.exits_per_second(), 5000.0);
}

TEST(Describe, ContainsAllThreeMetrics) {
  const std::string s = describe(Comparison{-40.0, -50.0, 12.0, -2.0});
  EXPECT_NE(s.find("-40.0%"), std::string::npos);
  EXPECT_NE(s.find("+12.0%"), std::string::npos);
  EXPECT_NE(s.find("-2.0%"), std::string::npos);
}

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.add_row({"x,y", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableDeath, RowWidthMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_SIM_ERROR(t.add_row({"only-one"}), "row width");
}

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(pct(3.14), "+3.1%");
  EXPECT_EQ(pct(-2.5), "-2.5%");
}

}  // namespace
}  // namespace paratick::metrics
