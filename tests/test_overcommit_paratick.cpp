// Paratick correctness under overcommit and NUMA: descheduled vCPUs must
// neither receive virtual-tick bursts on reschedule nor fall behind the
// declared rate while running; cross-socket wakes pay the interconnect
// hop.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "workload/micro.hpp"

namespace paratick::core {
namespace {

using sim::SimTime;

TEST(OvercommitParatick, NoVirtualTickBurstsAfterReschedule) {
  // 2 busy paratick VMs time-share 1 pCPU with a 6 ms slice (longer than
  // the 4 ms tick period). After each reschedule, the §5.1 design injects
  // at most ONE virtual tick (last_tick jumps to now), never a burst.
  SystemSpec spec;
  spec.machine = hw::MachineSpec::small(1);
  spec.host.sched_mode = hv::SchedMode::kShared;
  spec.host.timeslice = SimTime::ms(6);
  spec.max_duration = SimTime::sec(2);
  spec.stop_when_done = false;
  for (int i = 0; i < 2; ++i) {
    VmSpec vm;
    vm.vcpus = 1;
    vm.guest.tick_mode = guest::TickMode::kParatick;
    vm.guest.seed = 42 + static_cast<std::uint64_t>(i);
    vm.setup = [](guest::GuestKernel& k) {
      workload::PureComputeSpec pc;
      pc.total_cycles = 8'000'000'000;  // saturate
      pc.chunks = 8000;
      workload::install_pure_compute(k, pc);
    };
    spec.vms.push_back(std::move(vm));
  }
  System system(std::move(spec));
  const auto r = system.run();

  // Each VM runs ~50% of 2 s. Virtual ticks are injected at VM-entry
  // opportunities (one per reschedule + host ticks with >= 4 ms elapsed),
  // so the received rate degrades gracefully with the CPU share — never
  // bursts above the declared 250 Hz, never collapses.
  for (const auto& vm : r.vms) {
    EXPECT_LE(vm.policy.virtual_ticks, 260u);  // never above the declared rate
    EXPECT_GE(vm.policy.virtual_ticks, 100u);  // ~one per 6 ms slice at least
  }
  // Virtual ticks across both VMs never exceed wall-clock rate capacity.
  const auto total = r.vms[0].policy.virtual_ticks + r.vms[1].policy.virtual_ticks;
  EXPECT_LE(total, 510u);  // 2 s x 250 Hz of pCPU time + boot slack
}

TEST(OvercommitParatick, TimerExitsStayBelowDynticksWhenShared) {
  auto run_shared = [](guest::TickMode mode) {
    SystemSpec spec;
    spec.machine = hw::MachineSpec::small(2);
    spec.host.sched_mode = hv::SchedMode::kShared;
    spec.max_duration = SimTime::sec(1);
    spec.stop_when_done = false;
    for (int i = 0; i < 2; ++i) {
      VmSpec vm;
      vm.vcpus = 2;
      vm.guest.tick_mode = mode;
      vm.guest.seed = 9 + static_cast<std::uint64_t>(i);
      vm.setup = [](guest::GuestKernel& k) {
        workload::SyncStormSpec storm;
        storm.threads = 2;
        storm.sync_rate_hz = 300.0;
        storm.duration = SimTime::sec(1);
        storm.load = 0.4;
        workload::install_sync_storm(k, storm);
      };
      spec.vms.push_back(std::move(vm));
    }
    System system(std::move(spec));
    return system.run().exits_timer_related;
  };
  EXPECT_LT(run_shared(guest::TickMode::kParatick),
            run_shared(guest::TickMode::kDynticksIdle));
}

TEST(NumaWake, CrossSocketIpiSlowerThanLocal) {
  auto mean_wake_latency = [](bool cross_socket) {
    SystemSpec spec;
    // Two sockets, one CPU each; a large hop makes the effect measurable.
    spec.machine = hw::MachineSpec{2, 1, sim::CpuFrequency{2.0}, SimTime::us(3)};
    spec.max_duration = SimTime::sec(5);
    VmSpec vm;
    vm.vcpus = 2;
    if (!cross_socket) {
      // Pin both vCPUs onto... one socket is impossible with 1 CPU/socket;
      // instead compare against a same-socket machine.
      spec.machine = hw::MachineSpec{1, 2, sim::CpuFrequency{2.0}, SimTime::us(3)};
    }
    vm.setup = [](guest::GuestKernel& k) {
      workload::SyncStormSpec storm;
      storm.threads = 2;
      storm.sync_rate_hz = 2000.0;
      storm.duration = SimTime::sec(1);
      storm.load = 0.5;
      workload::install_sync_storm(k, storm);
    };
    spec.vms.push_back(std::move(vm));
    System system(std::move(spec));
    const auto r = system.run();
    return r.vms[0].wakeup_latency_us.mean();
  };
  const double local = mean_wake_latency(false);
  const double remote = mean_wake_latency(true);
  EXPECT_GT(remote, local + 2.0);  // the 3 us hop shows up in the wake path
}

}  // namespace
}  // namespace paratick::core
