#include <gtest/gtest.h>

#include "expect_error.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel_scenario.hpp"
#include "sim/engine.hpp"
#include "sim/parallel/parallel_engine.hpp"
#include "sim/rng.hpp"

namespace paratick::sim {
namespace {

TEST(ParallelEngine, IndependentPartitionsRunToCompletion) {
  Engine a, b;
  int fired_a = 0, fired_b = 0;
  a.schedule_at(SimTime::us(5), [&] { ++fired_a; });
  b.schedule_at(SimTime::us(9), [&] { ++fired_b; });

  ParallelEngine par(1);
  par.add_partition(a, "a");
  par.add_partition(b, "b");
  par.run();

  EXPECT_EQ(fired_a, 1);
  EXPECT_EQ(fired_b, 1);
  EXPECT_EQ(a.now(), SimTime::us(5));
  EXPECT_EQ(b.now(), SimTime::us(9));
  EXPECT_FALSE(par.lookahead().has_value());
}

TEST(ParallelEngine, RunUntilAdvancesEveryClockToDeadline) {
  Engine a, b;
  int fired = 0;
  a.schedule_at(SimTime::us(3), [&] { ++fired; });
  // An event exactly at the deadline must still execute (run_until
  // semantics on each partition).
  b.schedule_at(SimTime::us(10), [&] { ++fired; });
  b.schedule_at(SimTime::us(11), [&] { ++fired; });

  ParallelEngine par(1);
  par.add_partition(a);
  par.add_partition(b);
  par.run_until(SimTime::us(10));

  EXPECT_EQ(fired, 2);
  EXPECT_EQ(a.now(), SimTime::us(10));
  EXPECT_EQ(b.now(), SimTime::us(10));
  EXPECT_TRUE(b.has_pending_events());
}

TEST(ParallelEngine, CrossPartitionSendDeliversAtSrcNowPlusDelay) {
  Engine a, b;
  ParallelEngine par(1);
  const PartitionId pa = par.add_partition(a);
  const PartitionId pb = par.add_partition(b);
  par.declare_link(pa, pb, SimTime::us(2));

  SimTime delivered = SimTime::zero();
  a.schedule_at(SimTime::us(4), [&] {
    par.send(pa, pb, SimTime::us(3), [&] { delivered = b.now(); });
  });
  par.run();

  EXPECT_EQ(delivered, SimTime::us(7));  // 4 (src now) + 3 (delay)
}

TEST(ParallelEngine, SendBelowLinkLatencyThrows) {
  Engine a, b;
  ParallelEngine par(1);
  const PartitionId pa = par.add_partition(a);
  const PartitionId pb = par.add_partition(b);
  par.declare_link(pa, pb, SimTime::us(5));

  EXPECT_SIM_ERROR(par.send(pa, pb, SimTime::us(4), [] {}),
                   "faster than the declared link");
}

TEST(ParallelEngine, SendOverUndeclaredLinkThrows) {
  Engine a, b;
  ParallelEngine par(1);
  const PartitionId pa = par.add_partition(a);
  const PartitionId pb = par.add_partition(b);
  par.declare_link(pa, pb, SimTime::us(5));

  // Links are directed: a->b does not imply b->a.
  EXPECT_SIM_ERROR(par.send(pb, pa, SimTime::us(5), [] {}),
                   "undeclared link");
}

TEST(ParallelEngine, ZeroLatencyLinkRejected) {
  Engine a, b;
  ParallelEngine par(1);
  const PartitionId pa = par.add_partition(a);
  const PartitionId pb = par.add_partition(b);
  EXPECT_SIM_ERROR(par.declare_link(pa, pb, SimTime::zero()),
                   "must be positive");
}

TEST(ParallelEngine, DuplicateEngineRejected) {
  Engine a;
  ParallelEngine par(1);
  par.add_partition(a);
  EXPECT_SIM_ERROR(par.add_partition(a), "already registered");
}

TEST(ParallelEngine, LookaheadIsMinimumDeclaredLatency) {
  Engine a, b, c;
  ParallelEngine par(1);
  const PartitionId pa = par.add_partition(a);
  const PartitionId pb = par.add_partition(b);
  const PartitionId pc = par.add_partition(c);
  par.declare_link(pa, pb, SimTime::us(9));
  par.declare_link(pb, pc, SimTime::us(3));
  par.declare_link(pc, pa, SimTime::us(7));
  ASSERT_TRUE(par.lookahead().has_value());
  EXPECT_EQ(*par.lookahead(), SimTime::us(3));
}

struct CommitEvent {
  PartitionId part;
  std::int64_t when_ns;
  std::uint64_t seq;
  std::uint64_t digest;
  bool operator==(const CommitEvent&) const = default;
};

/// Run a 3-partition ring with local churn + cross traffic at the given
/// thread count; return (sinks, digest, committed stream).
struct RingOutcome {
  std::vector<std::uint64_t> sinks;
  std::uint64_t digest = 0;
  std::vector<CommitEvent> committed;
  ParallelProfile profile;
};

RingOutcome run_ring(unsigned threads) {
  constexpr PartitionId kParts = 3;
  Engine engines[kParts];
  std::uint64_t sinks[kParts] = {1, 2, 3};
  ParallelEngine par(threads);
  for (auto& e : engines) par.add_partition(e);
  for (PartitionId p = 0; p < kParts; ++p) {
    par.declare_link(p, (p + 1) % kParts, SimTime::us(2));
  }

  RingOutcome out;
  par.set_commit_hook([&](PartitionId part, SimTime when, std::uint64_t seq,
                          std::uint64_t digest) {
    out.committed.push_back({part, when.nanoseconds(), seq, digest});
  });

  // Local churn: self-rescheduling pumps with different phases, plus a
  // cross ping from each partition to its successor every few events.
  struct Pump {
    Engine* eng;
    ParallelEngine* par;
    PartitionId self, next;
    std::uint64_t* sink;
    std::uint64_t* next_sink;
    int remaining;
    void step() {
      *sink ^= static_cast<std::uint64_t>(eng->now().nanoseconds()) *
               0x9E3779B97F4A7C15ull;
      if ((remaining % 5) == 0) {
        par->send(self, next, SimTime::us(2), [s = next_sink] { *s += 17; });
      }
      if (--remaining > 0) {
        eng->schedule_after(SimTime::ns(700 + 13 * static_cast<int>(self)),
                            [this] { step(); });
      }
    }
  };
  Pump pumps[kParts];
  for (PartitionId p = 0; p < kParts; ++p) {
    pumps[p] = {&engines[p], &par,      p,
                (p + 1) % kParts,       &sinks[p], &sinks[(p + 1) % kParts],
                200};
    engines[p].schedule_after(SimTime::ns(1 + p), [&pump = pumps[p]] {
      pump.step();
    });
  }
  par.run();

  out.sinks.assign(sinks, sinks + kParts);
  out.digest = par.state_digest();
  out.profile = par.profile();
  return out;
}

TEST(ParallelEngine, ResultsBitIdenticalAcrossThreadCounts) {
  const RingOutcome ref = run_ring(1);
  ASSERT_GT(ref.profile.cross_messages, 0u);
  ASSERT_FALSE(ref.committed.empty());
  for (const unsigned threads : {2u, 4u, 8u}) {
    const RingOutcome got = run_ring(threads);
    EXPECT_EQ(got.sinks, ref.sinks) << threads << " threads";
    EXPECT_EQ(got.digest, ref.digest) << threads << " threads";
    EXPECT_EQ(got.committed, ref.committed) << threads << " threads";
    EXPECT_EQ(got.profile.cross_messages, ref.profile.cross_messages);
    EXPECT_EQ(got.profile.events_committed, ref.profile.events_committed);
    EXPECT_EQ(got.profile.quanta, ref.profile.quanta);
  }
}

TEST(ParallelEngine, CommitHookStreamIsGloballyTimeOrdered) {
  const RingOutcome out = run_ring(4);
  for (std::size_t i = 1; i < out.committed.size(); ++i) {
    const CommitEvent& prev = out.committed[i - 1];
    const CommitEvent& cur = out.committed[i];
    // Merge order: (time, partition, seq), nondecreasing throughout.
    const bool ordered =
        prev.when_ns < cur.when_ns ||
        (prev.when_ns == cur.when_ns &&
         (prev.part < cur.part ||
          (prev.part == cur.part && prev.seq < cur.seq)));
    ASSERT_TRUE(ordered) << "committed stream out of order at " << i;
  }
}

TEST(ParallelEngine, LowestPartitionErrorWinsDeterministically) {
  for (const unsigned threads : {1u, 4u}) {
    Engine a, b, c;
    ParallelEngine par(threads);
    par.add_partition(a);
    par.add_partition(b);
    par.add_partition(c);
    par.declare_full_mesh(SimTime::us(100));  // one window holds all three
    // All three fail inside the same quantum window; the propagated error
    // must be partition 0's whatever the worker schedule was.
    a.schedule_at(SimTime::us(3), [] {
      PARATICK_CHECK_MSG(false, "boom-partition-zero");
    });
    b.schedule_at(SimTime::us(2), [] {
      PARATICK_CHECK_MSG(false, "boom-partition-one");
    });
    c.schedule_at(SimTime::us(1), [] {
      PARATICK_CHECK_MSG(false, "boom-partition-two");
    });
    EXPECT_SIM_ERROR(par.run(), "boom-partition-zero");
  }
}

TEST(ParallelEngine, WorkerThreadsActuallyExecuteEvents) {
  // Not a determinism test: sanity that threads > 1 really runs events on
  // pool workers (each partition records the thread it executed on).
  Engine a, b;
  std::atomic<int> distinct{0};
  const auto main_id = std::this_thread::get_id();
  a.schedule_at(SimTime::us(1), [&] {
    if (std::this_thread::get_id() != main_id) distinct.fetch_add(1);
  });
  b.schedule_at(SimTime::us(1), [&] {
    if (std::this_thread::get_id() != main_id) distinct.fetch_add(1);
  });
  ParallelEngine par(2);
  par.add_partition(a);
  par.add_partition(b);
  par.run();
  EXPECT_EQ(distinct.load(), 2);
}

TEST(ParallelEngine, PreRunSendsCommitBeforeFirstWindow) {
  Engine a, b;
  ParallelEngine par(1);
  const PartitionId pa = par.add_partition(a);
  const PartitionId pb = par.add_partition(b);
  par.declare_link(pa, pb, SimTime::us(1));

  int fired = 0;
  par.send(pa, pb, SimTime::us(1), [&] { ++fired; });  // setup-time send
  par.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(b.now(), SimTime::us(1));
}

TEST(ParallelEngine, ProfileCountsPartitionsQuantaAndMessages) {
  const RingOutcome out = run_ring(1);
  EXPECT_EQ(out.profile.partitions, 3u);
  EXPECT_GT(out.profile.quanta, 1u);
  EXPECT_EQ(out.profile.events_committed, out.committed.size());
  EXPECT_EQ(out.profile.merged.events_executed, out.profile.events_committed);
}

/// One link-pump: streams payloads over its declared link, mutating its
/// payload with an LCG so every message is distinct (an out-of-order or
/// dropped delivery cannot cancel out in the XOR sink).
struct DagPump {
  Engine* eng = nullptr;
  ParallelEngine* par = nullptr;
  PartitionId src = 0;
  PartitionId dst = 0;
  SimTime latency;
  SimTime period;
  std::uint64_t* dst_sink = nullptr;
  std::uint64_t payload = 0;
  int remaining = 0;

  void step() {
    par->send(src, dst, latency, [s = dst_sink, v = payload] { *s ^= v; });
    payload = payload * 6364136223846793005ull + 1442695040888963407ull;
    if (--remaining > 0) eng->schedule_after(period, [this] { step(); });
  }
};

struct DagOutcome {
  std::vector<std::uint64_t> sinks;
  std::uint64_t digest = 0;
  std::vector<CommitEvent> committed;
  ParallelProfile profile;
};

/// A randomly wired DAG of link latencies (edges only src < dst, so
/// partition 0 has no inbound links and exercises the capped-horizon
/// path), with one pump per link and local churn on every partition. The
/// wiring RNG is rebuilt from a fixed seed on every call, so each
/// (threads, mode) configuration replays the exact same topology and
/// traffic — the outcome must be identical everywhere.
DagOutcome run_random_dag(unsigned threads, LookaheadMode mode) {
  constexpr PartitionId kParts = 6;
  Rng wiring(0xDA60117ull);
  Engine engines[kParts];
  std::uint64_t sinks[kParts] = {};
  ParallelEngine par(threads);
  par.set_lookahead_mode(mode);
  for (auto& e : engines) par.add_partition(e);

  DagOutcome out;
  par.set_commit_hook([&](PartitionId part, SimTime when, std::uint64_t seq,
                          std::uint64_t digest) {
    out.committed.push_back({part, when.nanoseconds(), seq, digest});
  });

  std::vector<std::unique_ptr<DagPump>> pumps;
  for (PartitionId s = 0; s < kParts; ++s) {
    for (PartitionId d = s + 1; d < kParts; ++d) {
      if (wiring.uniform_int(0, 2) != 0) continue;  // keep ~1/3 of the pairs
      const SimTime lat = SimTime::us(wiring.uniform_int(1, 20));
      par.declare_link(s, d, lat);
      auto pump = std::make_unique<DagPump>();
      pump->eng = &engines[s];
      pump->par = &par;
      pump->src = s;
      pump->dst = d;
      pump->latency = lat;
      pump->period = lat * wiring.uniform_int(1, 3);
      pump->dst_sink = &sinks[d];
      pump->payload = wiring.next_u64();
      pump->remaining = 60;
      engines[s].schedule_after(SimTime::ns(wiring.uniform_int(1, 900)),
                                [p = pump.get()] { p->step(); });
      pumps.push_back(std::move(pump));
    }
  }
  // The seed above wires several links; a topology with none would make
  // this test vacuous.
  PARATICK_CHECK(!pumps.empty());

  // Local churn so partitions have work between deliveries.
  struct Local {
    Engine* eng;
    std::uint64_t* sink;
    int remaining;
    SimTime step_ns;
    void step() {
      *sink ^= static_cast<std::uint64_t>(eng->now().nanoseconds()) *
               0x9E3779B97F4A7C15ull;
      if (--remaining > 0) eng->schedule_after(step_ns, [this] { step(); });
    }
  };
  Local locals[kParts];
  for (PartitionId p = 0; p < kParts; ++p) {
    locals[p] = {&engines[p], &sinks[p], 150,
                 SimTime::ns(wiring.uniform_int(300, 1500))};
    engines[p].schedule_after(SimTime::ns(1 + p),
                              [&l = locals[p]] { l.step(); });
  }
  par.run();

  out.sinks.assign(sinks, sinks + kParts);
  out.digest = par.state_digest();
  out.profile = par.profile();
  return out;
}

TEST(ParallelEngine, RandomDagDeterministicAcrossThreadsAndModes) {
  const DagOutcome ref = run_random_dag(1, LookaheadMode::kGlobal);
  ASSERT_GT(ref.profile.cross_messages, 0u);
  ASSERT_FALSE(ref.committed.empty());
  std::uint64_t quanta_by_mode[2] = {ref.profile.quanta, 0};
  for (const unsigned threads : {1u, 2u, 4u}) {
    for (const LookaheadMode mode :
         {LookaheadMode::kGlobal, LookaheadMode::kTopology}) {
      if (threads == 1 && mode == LookaheadMode::kGlobal) continue;
      const DagOutcome got = run_random_dag(threads, mode);
      const std::string label = std::to_string(threads) + " threads, " +
                                to_string(mode) + " lookahead";
      EXPECT_EQ(got.sinks, ref.sinks) << label;
      EXPECT_EQ(got.digest, ref.digest) << label;
      EXPECT_EQ(got.committed, ref.committed) << label;
      EXPECT_EQ(got.profile.cross_messages, ref.profile.cross_messages) << label;
      EXPECT_EQ(got.profile.events_committed, ref.profile.events_committed)
          << label;
      // Window counters are mode-dependent but must be thread-invariant
      // within a mode.
      auto& expect = quanta_by_mode[mode == LookaheadMode::kTopology ? 1 : 0];
      if (expect == 0) {
        expect = got.profile.quanta;
      } else {
        EXPECT_EQ(got.profile.quanta, expect) << label;
      }
    }
  }
  // On a DAG, per-link horizons never do worse than the global window.
  EXPECT_LE(quanta_by_mode[1], quanta_by_mode[0]);
}

TEST(ParallelEngine, TopologyLookaheadElidesBarriersOnSparseStar) {
  // The barrierstorm shape: one tight link into partition 0, everyone
  // else idle-ish. Global lookahead pays a 1us window for all four
  // partitions; topology mode must cut the barrier count by at least 2x
  // while producing the identical final state.
  struct Outcome {
    std::uint64_t digest = 0;
    std::uint64_t sink = 0;
    ParallelProfile profile;
  };
  const auto run = [](LookaheadMode mode) {
    Engine engines[4];
    std::uint64_t sinks[4] = {};
    ParallelEngine par(1);
    par.set_lookahead_mode(mode);
    for (auto& e : engines) par.add_partition(e);
    par.declare_link(1, 0, SimTime::us(1));

    DagPump pump;
    pump.eng = &engines[1];
    pump.par = &par;
    pump.src = 1;
    pump.dst = 0;
    pump.latency = SimTime::us(1);
    pump.period = SimTime::us(10);
    pump.dst_sink = &sinks[0];
    pump.payload = 0xF00Dull;
    pump.remaining = 100;
    engines[1].schedule_after(SimTime::ns(1), [&pump] { pump.step(); });
    for (PartitionId p = 2; p < 4; ++p) {
      engines[p].schedule_at(SimTime::us(500),
                             [&s = sinks[p], p] { s = 41u + p; });
    }
    par.run();

    Outcome out;
    out.digest = par.state_digest();
    for (const std::uint64_t s : sinks) out.sink ^= s;
    out.profile = par.profile();
    return out;
  };
  const Outcome g = run(LookaheadMode::kGlobal);
  const Outcome t = run(LookaheadMode::kTopology);
  EXPECT_EQ(g.digest, t.digest);
  EXPECT_EQ(g.sink, t.sink);
  EXPECT_EQ(g.profile.events_committed, t.profile.events_committed);
  EXPECT_GT(t.profile.barriers_elided, 0u);
  EXPECT_LE(t.profile.quanta * 2, g.profile.quanta);
}

}  // namespace
}  // namespace paratick::sim

namespace paratick::core {
namespace {

PartitionedScenarioSpec scenario_spec(unsigned engine_threads) {
  PartitionedScenarioSpec spec;
  spec.vms = 3;
  spec.duration = sim::SimTime::ms(5);
  spec.server.workers = 1;
  spec.server.requests_per_worker = 50;
  spec.engine_threads = engine_threads;
  spec.record_trace = true;
  return spec;
}

TEST(PartitionedScenario, ExportsAndTraceBitIdenticalAcrossEngineThreads) {
  const PartitionedRunResult ref = run_partitioned_scenario(scenario_spec(1));
  const PartitionedRunResult par = run_partitioned_scenario(scenario_spec(4));

  EXPECT_EQ(ref.state_digest, par.state_digest);
  EXPECT_EQ(ref.trace_chain, par.trace_chain);
  EXPECT_EQ(ref.trace_events, par.trace_events);
  EXPECT_EQ(ref.to_csv(), par.to_csv());
  EXPECT_EQ(ref.to_json(), par.to_json());
  ASSERT_GT(ref.profile.cross_messages, 0u);
  EXPECT_EQ(ref.profile.cross_messages, par.profile.cross_messages);
}

TEST(PartitionedScenario, CrossVmWakeIpisReachTheGuests) {
  const PartitionedRunResult res = run_partitioned_scenario(scenario_spec(1));
  ASSERT_EQ(res.vms.size(), 3u);
  for (const metrics::RunResult& r : res.vms) {
    // Each VM received the ring pacer's wake IPIs: the wake-ipi exit cause
    // (or wakes from idle) must show up in its exit accounting.
    EXPECT_GT(r.exits_total, 0u);
    EXPECT_EQ(r.wall, sim::SimTime::ms(5));
  }
}

}  // namespace
}  // namespace paratick::core
