// Property tests over the paper's core guarantees, parameterized across
// tick frequencies, VM sizes and workload classes (TEST_P sweeps):
//
//   P1 (§4.2): paratick never induces more timer-related exits than
//       tickless kernels.
//   P2 (§3.1): periodic guests produce tick exits at the analytic rate.
//   P3: paratick guests receive virtual ticks at ~their declared rate
//       while running, for any compatible host frequency.
//   P4: the three policies never change the amount of *useful* work.
#include <gtest/gtest.h>

#include <tuple>

#include "core/experiment.hpp"
#include "core/system.hpp"
#include "workload/fio.hpp"
#include "workload/micro.hpp"
#include "workload/parsec.hpp"

namespace paratick::core {
namespace {

using sim::Frequency;
using sim::SimTime;

// ---------------------------------------------------------------------------
// P1: paratick timer exits <= dynticks timer exits, across workload classes
// and VM sizes.
// ---------------------------------------------------------------------------

class ParatickNeverWorse
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(ParatickNeverWorse, TimerExitsBounded) {
  const auto [bench, vcpus] = GetParam();
  ExperimentSpec exp;
  exp.machine = hw::MachineSpec::small(static_cast<std::uint32_t>(vcpus));
  exp.vcpus = vcpus;
  exp.attach_disk = true;
  const auto& profile = workload::parsec_profile(bench);
  exp.setup = [&profile, vcpus = vcpus](guest::GuestKernel& k) {
    workload::install_parsec(k, profile, vcpus);
  };
  const AbResult ab = run_paratick_vs_dynticks(exp);
  EXPECT_LE(ab.treatment.exits_timer_related, ab.baseline.exits_timer_related)
      << bench << " @" << vcpus;
  EXPECT_LE(ab.treatment.exits_total, ab.baseline.exits_total);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParatickNeverWorse,
    ::testing::Values(std::make_tuple("swaptions", 1),
                      std::make_tuple("fluidanimate", 1),
                      std::make_tuple("fluidanimate", 4),
                      std::make_tuple("streamcluster", 4),
                      std::make_tuple("dedup", 4),
                      std::make_tuple("x264", 8),
                      std::make_tuple("canneal", 8)));

// ---------------------------------------------------------------------------
// P2: periodic tick exit rate matches the analytic model at any frequency.
// ---------------------------------------------------------------------------

class PeriodicRate : public ::testing::TestWithParam<double> {};

TEST_P(PeriodicRate, IdleVmMatchesFormula) {
  const double hz = GetParam();
  SystemSpec spec;
  spec.machine = hw::MachineSpec::small(2);
  spec.max_duration = SimTime::sec(2);
  VmSpec vm;
  vm.vcpus = 2;
  vm.guest.tick_mode = guest::TickMode::kPeriodic;
  vm.guest.tick_freq = Frequency{hz};
  spec.vms.push_back(std::move(vm));
  System system(std::move(spec));
  const auto r = system.run();
  // Per tick: one MSR re-arm exit (timer-related). 2 vCPUs, 2 seconds.
  const double expected = 2.0 * 2.0 * hz;
  EXPECT_NEAR(static_cast<double>(r.exits_timer_related), expected,
              expected * 0.05 + 10.0);
}

INSTANTIATE_TEST_SUITE_P(Frequencies, PeriodicRate,
                         ::testing::Values(100.0, 250.0, 1000.0));

// ---------------------------------------------------------------------------
// P3: a busy paratick guest receives virtual ticks at its declared rate,
// for any host frequency (compatible or not).
// ---------------------------------------------------------------------------

class VirtualTickRate : public ::testing::TestWithParam<double> {};

TEST_P(VirtualTickRate, BusyGuestGetsDeclaredRate) {
  const double host_hz = GetParam();
  ExperimentSpec exp;
  exp.machine = hw::MachineSpec::small(1);
  exp.vcpus = 1;
  exp.host.host_tick_freq = Frequency{host_hz};
  exp.max_duration = SimTime::sec(2);
  exp.setup = [](guest::GuestKernel& k) {
    workload::PureComputeSpec pc;
    pc.total_cycles = 4'000'000'000;  // saturate the window
    pc.chunks = 4000;
    workload::install_pure_compute(k, pc);
  };
  const auto r = run_mode(exp, guest::TickMode::kParatick);
  const double rate =
      static_cast<double>(r.vms[0].policy.virtual_ticks) / r.wall.seconds();
  EXPECT_NEAR(rate, 250.0, 15.0) << "host " << host_hz << " Hz";
}

INSTANTIATE_TEST_SUITE_P(HostFrequencies, VirtualTickRate,
                         ::testing::Values(100.0, 250.0, 300.0, 500.0, 1000.0));

// ---------------------------------------------------------------------------
// P4: tick policy never changes useful work, only overhead.
// ---------------------------------------------------------------------------

class UsefulWorkInvariant : public ::testing::TestWithParam<guest::TickMode> {};

TEST_P(UsefulWorkInvariant, GuestUserCyclesIdentical) {
  ExperimentSpec exp;
  exp.machine = hw::MachineSpec::small(2);
  exp.vcpus = 2;
  exp.setup = [](guest::GuestKernel& k) {
    workload::SyncStormSpec storm;
    storm.threads = 2;
    storm.sync_rate_hz = 400.0;
    storm.duration = SimTime::ms(500);
    workload::install_sync_storm(k, storm);
  };
  const auto r = run_mode(exp, GetParam());
  static std::int64_t reference = -1;
  const auto user = r.cycles.total(hw::CycleCategory::kGuestUser).count();
  if (reference < 0) reference = user;
  // Per-task RNG streams make the drawn work identical across modes up to
  // the uncontended-futex fast-path cycles (also kGuestUser but
  // contention-dependent).
  EXPECT_NEAR(static_cast<double>(user), static_cast<double>(reference),
              static_cast<double>(reference) * 0.002);
}

INSTANTIATE_TEST_SUITE_P(Modes, UsefulWorkInvariant,
                         ::testing::Values(guest::TickMode::kPeriodic,
                                           guest::TickMode::kDynticksIdle,
                                           guest::TickMode::kParatick));

// ---------------------------------------------------------------------------
// P5: with everything idle, dynticks and paratick converge to silence while
// periodic keeps paying — at every tick frequency.
// ---------------------------------------------------------------------------

class IdleCost : public ::testing::TestWithParam<double> {};

TEST_P(IdleCost, OrderingHolds) {
  auto run_idle = [&](guest::TickMode mode) {
    SystemSpec spec;
    spec.machine = hw::MachineSpec::small(2);
    spec.max_duration = SimTime::sec(1);
    VmSpec vm;
    vm.vcpus = 2;
    vm.guest.tick_mode = mode;
    vm.guest.tick_freq = Frequency{GetParam()};
    spec.vms.push_back(std::move(vm));
    System system(std::move(spec));
    return system.run().exits_total;
  };
  const auto periodic = run_idle(guest::TickMode::kPeriodic);
  const auto dynticks = run_idle(guest::TickMode::kDynticksIdle);
  const auto paratick = run_idle(guest::TickMode::kParatick);
  EXPECT_LT(dynticks, periodic / 10);
  EXPECT_LE(paratick, dynticks);
}

INSTANTIATE_TEST_SUITE_P(Frequencies, IdleCost, ::testing::Values(100.0, 250.0, 1000.0));

// ---------------------------------------------------------------------------
// P6: paratick shortens the wake-to-run path (the §4.2/§6.3 critical-path
// mechanism) — dynticks pays a tick-restart MSR exit on every idle exit.
// ---------------------------------------------------------------------------

class WakeLatency : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WakeLatency, ParatickWakesFasterThanDynticks) {
  ExperimentSpec exp;
  exp.machine = hw::MachineSpec::small(1);
  exp.vcpus = 1;
  exp.attach_disk = true;
  exp.setup = [](guest::GuestKernel& k) {
    workload::FioSpec spec;
    spec.block_bytes = GetParam();
    spec.ops = 500;
    workload::install_fio(k, spec);
  };
  const AbResult ab = run_paratick_vs_dynticks(exp);
  const auto& base = ab.baseline.vms[0].wakeup_latency_us;
  const auto& treat = ab.treatment.vms[0].wakeup_latency_us;
  ASSERT_GE(base.count(), 500u);
  ASSERT_GE(treat.count(), 500u);
  // The dynticks wake path carries one more ~8 us MSR exit.
  EXPECT_LT(treat.mean(), base.mean());
  EXPECT_NEAR(base.mean() - treat.mean(), 8.0, 4.0);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, WakeLatency,
                         ::testing::Values(4096u, 65536u));

}  // namespace
}  // namespace paratick::core
