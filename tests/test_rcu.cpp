#include <gtest/gtest.h>

#include "guest/rcu.hpp"

namespace paratick::guest {
namespace {

TEST(Rcu, QuietInitially) {
  RcuState rcu;
  EXPECT_FALSE(rcu.needs_tick());
  EXPECT_EQ(rcu.pending(), 0u);
  EXPECT_EQ(rcu.on_tick(), 0u);
}

TEST(Rcu, EnqueueRequiresTicks) {
  RcuState rcu(2);
  rcu.enqueue();
  EXPECT_TRUE(rcu.needs_tick());
  EXPECT_EQ(rcu.pending(), 1u);
}

TEST(Rcu, GracePeriodCompletesAfterConfiguredTicks) {
  RcuState rcu(2);
  rcu.enqueue(3);
  EXPECT_EQ(rcu.on_tick(), 0u);  // grace period still running
  EXPECT_TRUE(rcu.needs_tick());
  EXPECT_EQ(rcu.on_tick(), 3u);  // second tick drains the batch
  EXPECT_FALSE(rcu.needs_tick());
  EXPECT_EQ(rcu.invoked(), 3u);
}

TEST(Rcu, SingleTickGracePeriod) {
  RcuState rcu(1);
  rcu.enqueue();
  EXPECT_EQ(rcu.on_tick(), 1u);
  EXPECT_FALSE(rcu.needs_tick());
}

TEST(Rcu, ReEnqueueRestartsGracePeriod) {
  RcuState rcu(2);
  rcu.enqueue();
  rcu.on_tick();
  rcu.enqueue();  // new callback before the GP ended: restart
  EXPECT_EQ(rcu.on_tick(), 0u);
  EXPECT_EQ(rcu.on_tick(), 2u);
}

TEST(Rcu, BatchesAccumulate) {
  RcuState rcu(1);
  rcu.enqueue(2);
  rcu.enqueue(3);
  EXPECT_EQ(rcu.pending(), 5u);
  EXPECT_EQ(rcu.on_tick(), 5u);
  EXPECT_EQ(rcu.invoked(), 5u);
}

TEST(Rcu, TicksWhileQuietAreFree) {
  RcuState rcu(2);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rcu.on_tick(), 0u);
  rcu.enqueue();
  rcu.on_tick();
  EXPECT_EQ(rcu.on_tick(), 1u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rcu.on_tick(), 0u);
}

}  // namespace
}  // namespace paratick::guest
