#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/record_replay/bisect.hpp"
#include "core/record_replay/record_replay.hpp"
#include "core/record_replay/trace.hpp"
#include "core/replay.hpp"
#include "core/sweep.hpp"
#include "core/sweep_shard.hpp"
#include "expect_error.hpp"
#include "workload/micro.hpp"

namespace paratick::core::record_replay {
namespace {

// ---- trace encoding ------------------------------------------------------

TEST(EventTrace, AppendDecodeRoundTrip) {
  EventTrace t;
  // Irregular deltas on purpose: out-of-order seqs (pops are time-ordered,
  // not schedule-ordered) and a zero time delta.
  const std::vector<TraceRecord> records = {
      {100, 0, 0xdeadbeef},
      {100, 3, 0x00000001},
      {250, 1, 0xffffffff},
      {1'000'000'000, 4, 0},
  };
  for (const TraceRecord& r : records) t.append(r.time_ns, r.seq, r.digest);

  EXPECT_EQ(t.count(), records.size());
  EXPECT_EQ(t.decode(), records);
  EXPECT_EQ(EventTrace::from_records(records).chain_digest(), t.chain_digest());

  // Chain prefixes: empty prefix is the seed, full prefix is the digest,
  // and every record moves the chain.
  EXPECT_EQ(t.chain_at(0), kChainSeed);
  EXPECT_EQ(t.chain_at(t.count()), t.chain_digest());
  std::uint64_t prev = t.chain_at(0);
  for (std::uint64_t n = 1; n <= t.count(); ++n) {
    EXPECT_NE(t.chain_at(n), prev);
    prev = t.chain_at(n);
  }
}

TEST(EventTrace, SerializeRoundTripAndCorruptionDetection) {
  EventTrace t;
  for (int i = 0; i < 64; ++i) {
    t.append(1000 * i, static_cast<std::uint64_t>(i),
             static_cast<std::uint32_t>(i) * 2654435761u);
  }
  const std::string bytes = t.serialize();
  const EventTrace back = EventTrace::deserialize(bytes);
  EXPECT_EQ(back.count(), t.count());
  EXPECT_EQ(back.chain_digest(), t.chain_digest());
  EXPECT_EQ(back.decode(), t.decode());

  // A deserialized trace must keep appending from the right delta state.
  EventTrace grown = EventTrace::deserialize(bytes);
  grown.append(64'000, 64, 42);
  EventTrace ref = t;
  ref.append(64'000, 64, 42);
  EXPECT_EQ(grown.chain_digest(), ref.chain_digest());

  std::string bad_magic = bytes;
  bad_magic[0] ^= 0x01;
  EXPECT_SIM_ERROR((void)EventTrace::deserialize(bad_magic), "bad magic");

  EXPECT_SIM_ERROR((void)EventTrace::deserialize(bytes.substr(0, 10)),
                   "file too short");

  std::string truncated = bytes;
  truncated.pop_back();
  EXPECT_SIM_ERROR((void)EventTrace::deserialize(truncated),
                   "stream size does not match");

  // Flip one payload byte: either the varint decoder or the chain digest
  // must catch it — both throw with the trace named.
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x40;
  EXPECT_SIM_ERROR((void)EventTrace::deserialize(corrupt), "event trace");
}

TEST(EventTrace, FileRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "paratick_rr_test" / "file_round_trip";
  fs::remove_all(dir);

  EventTrace t;
  t.append(10, 0, 1);
  t.append(20, 1, 2);
  // write_trace_file creates the missing parent directories.
  const std::string path =
      write_trace_file(t, (dir / "sub" / "run0.trace").string());
  const EventTrace back = load_trace_file(path);
  EXPECT_EQ(back.count(), 2u);
  EXPECT_EQ(back.chain_digest(), t.chain_digest());

  EXPECT_SIM_ERROR((void)load_trace_file((dir / "missing.trace").string()),
                   "cannot open trace file");
}

// ---- record -> replay round trip -----------------------------------------

/// Healthy single-cell config: one short paratick run, no faults.
SweepConfig ok_run_config() {
  SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(1);
  cfg.base.vcpus = 1;
  cfg.base.max_duration = sim::SimTime::ms(20);
  cfg.base.setup = [](guest::GuestKernel& k) {
    workload::PureComputeSpec spec;
    spec.total_cycles = 10'000'000;  // ~5 ms at 2 GHz
    spec.chunks = 10;
    workload::install_pure_compute(k, spec);
  };
  cfg.modes = {guest::TickMode::kParatick};
  cfg.repeat = 1;
  cfg.root_seed = 42;
  cfg.threads = 1;
  return cfg;
}

/// Record run 0 of `cfg` and return (run, trace) via out-params.
SweepRun record_run0(SweepConfig cfg, EventTrace* trace) {
  TraceRecorder recorder;
  cfg.observer = &recorder;
  SweepRun run = SweepRunner(cfg).execute_run(0);
  *trace = recorder.take();
  return run;
}

/// Run-record JSON with the two host-wall-clock fields zeroed — everything
/// else in the record is deterministic and must round-trip bit-exactly.
std::string scrubbed_record(SweepRun run) {
  run.host_seconds = 0.0;
  run.result.engine_wall_ns = 0;
  return run_record_to_json(run);
}

TEST(RecordReplay, RoundTripHasZeroDivergencesAndByteIdenticalResult) {
  EventTrace trace;
  const SweepRun recorded = record_run0(ok_run_config(), &trace);
  ASSERT_TRUE(recorded.ok);
  // Paratick + pure compute is event-light by design (that's the paper);
  // a run is still a dozen-plus engine events.
  ASSERT_GT(trace.count(), 10u);
  EXPECT_EQ(trace.count(), recorded.result.events_executed);

  SweepConfig cfg = ok_run_config();
  TraceChecker checker(trace);
  cfg.observer = &checker;
  const SweepRun replayed = SweepRunner(cfg).execute_run(0);
  ASSERT_TRUE(replayed.ok);
  EXPECT_FALSE(checker.divergence().has_value());
  EXPECT_FALSE(checker.check_complete().has_value());
  EXPECT_EQ(checker.events_seen(), trace.count());
  EXPECT_EQ(checker.observed_chain(), trace.chain_digest());

  EXPECT_EQ(scrubbed_record(recorded), scrubbed_record(replayed));
}

TEST(RecordReplay, RecordingIsObservational) {
  // Same run with and without the recorder attached: identical result.
  EventTrace trace;
  const SweepRun recorded = record_run0(ok_run_config(), &trace);
  const SweepRun bare = SweepRunner(ok_run_config()).execute_run(0);
  ASSERT_TRUE(recorded.ok);
  ASSERT_TRUE(bare.ok);
  EXPECT_EQ(scrubbed_record(recorded), scrubbed_record(bare));
}

/// Replay run 0 against `trace` with a per-event checker attached;
/// returns the run disposition, exposing the checker's divergence.
SweepRun checked_replay0(const EventTrace& trace,
                         std::optional<Divergence>* divergence) {
  SweepConfig cfg = ok_run_config();
  TraceChecker checker(trace);
  cfg.observer = &checker;
  SweepRun run = SweepRunner(cfg).execute_run(0);
  *divergence = checker.divergence();
  if (!*divergence) *divergence = checker.check_complete();
  return run;
}

TEST(RecordReplay, TamperedRecordsRaiseTypedDivergenceAtExactIndex) {
  EventTrace trace;
  ASSERT_TRUE(record_run0(ok_run_config(), &trace).ok);
  std::vector<TraceRecord> records = trace.decode();
  const std::uint64_t k = trace.count() / 2;

  struct Case {
    Divergence::What what;
    void (*tamper)(TraceRecord&);
  };
  const Case cases[] = {
      {Divergence::What::kDigest, [](TraceRecord& r) { r.digest ^= 0xbad; }},
      {Divergence::What::kTime, [](TraceRecord& r) { r.time_ns += 1; }},
      {Divergence::What::kSeq, [](TraceRecord& r) { r.seq += 7; }},
  };
  for (const Case& c : cases) {
    std::vector<TraceRecord> tampered = records;
    c.tamper(tampered[static_cast<std::size_t>(k)]);
    std::optional<Divergence> d;
    const SweepRun run = checked_replay0(EventTrace::from_records(tampered), &d);
    EXPECT_FALSE(run.ok);
    ASSERT_TRUE(run.failure.has_value());
    EXPECT_EQ(run.failure->kind, RunFailure::Kind::kDivergence);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->what, c.what) << Divergence::what_name(c.what);
    EXPECT_EQ(d->index, k);
    EXPECT_NE(run.failure->message.find("event #"), std::string::npos);
  }
}

TEST(RecordReplay, TraceLengthMismatchesAreTyped) {
  EventTrace trace;
  ASSERT_TRUE(record_run0(ok_run_config(), &trace).ok);
  const std::vector<TraceRecord> records = trace.decode();
  const std::uint64_t n = trace.count();

  // Truncated trace: the replay outlives it -> kExtraEvent at the cut.
  std::vector<TraceRecord> shorter(records.begin(), records.end() - 1);
  std::optional<Divergence> d;
  SweepRun run = checked_replay0(EventTrace::from_records(shorter), &d);
  EXPECT_FALSE(run.ok);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->what, Divergence::What::kExtraEvent);
  EXPECT_EQ(d->index, n - 1);

  // Extended trace: the replay ends first -> kMissingEvent, reported by
  // check_complete (the engine just stops; no event is there to mismatch).
  std::vector<TraceRecord> longer = records;
  longer.push_back({records.back().time_ns + 1000, records.back().seq + 1, 0});
  run = checked_replay0(EventTrace::from_records(longer), &d);
  EXPECT_TRUE(run.ok);  // the run itself completed fine
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->what, Divergence::What::kMissingEvent);
  EXPECT_EQ(d->index, n);
}

// ---- chaos sweeps: trace files, bundles, bisection -----------------------

/// Chaos config in the split-outcome style of test_fault.cpp: 100% timer
/// drops kill dynticks replicas on the watchdog while paratick survives,
/// so every sweep produces both failed and healthy runs.
SweepConfig chaos_sweep(unsigned threads) {
  SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(1);
  cfg.base.vcpus = 1;
  cfg.base.max_duration = sim::SimTime::ms(200);
  cfg.base.setup = [](guest::GuestKernel& k) {
    workload::PureComputeSpec spec;
    spec.total_cycles = 100'000'000;  // ~50 ms at 2 GHz
    spec.chunks = 100;
    workload::install_pure_compute(k, spec);
  };
  cfg.modes = {guest::TickMode::kDynticksIdle, guest::TickMode::kParatick};
  cfg.repeat = 2;
  cfg.root_seed = 321;
  cfg.threads = threads;
  cfg.fault.timer_drop_prob = 1.0;
  cfg.watchdog = true;
  cfg.bench_name = "rrtest";
  return cfg;
}

std::string fresh_dir(const std::string& name) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "paratick_rr_test" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(RecordReplay, ChaosSweepWritesTracesNextToBundles) {
  SweepConfig cfg = chaos_sweep(1);
  cfg.record_trace = true;
  cfg.failure_dir = fresh_dir("chaos_traces");
  const SweepResult res = SweepRunner(cfg).run();

  const auto failed = res.failed_runs();
  ASSERT_GE(failed.size(), 2u);  // both dynticks replicas die on the watchdog
  for (const SweepRun* run : failed) {
    ASSERT_FALSE(run->bundle_path.empty());
    ASSERT_FALSE(run->trace_path.empty());
    EXPECT_TRUE(std::filesystem::exists(run->trace_path)) << run->trace_path;
    // Canonical layout: trace sits next to the bundle as run<idx>.trace.
    EXPECT_NE(run->trace_path.find(
                  "rrtest/run" + std::to_string(run->run_index) + ".trace"),
              std::string::npos);

    // The bundle references its trace, and the checked replay reproduces
    // the watchdog failure with every recorded event matching.
    const ReplayBundle bundle = load_replay_bundle(run->bundle_path);
    EXPECT_EQ(bundle.trace_path, run->trace_path);
    const EventTrace trace = load_trace_file(bundle.trace_path);
    EXPECT_GT(trace.count(), 0u);

    const ReplayCheckResult checked = check_replay(chaos_sweep(1), bundle, trace);
    EXPECT_FALSE(checked.divergence.has_value());
    EXPECT_EQ(checked.events_checked, trace.count());
    std::string detail;
    EXPECT_TRUE(reproduces(bundle, checked.run, &detail)) << detail;
  }
  // Healthy runs never write traces — only failures are worth archiving.
  for (const auto& run : res.runs) {
    if (run.ok) {
      EXPECT_TRUE(run.trace_path.empty());
    }
  }
}

TEST(RecordReplay, BisectPinsInjectedDivergenceToTheExactEvent) {
  SweepConfig cfg = chaos_sweep(1);
  cfg.record_trace = true;
  cfg.failure_dir = fresh_dir("bisect");
  const SweepResult res = SweepRunner(cfg).run();
  const auto failed = res.failed_runs();
  ASSERT_FALSE(failed.empty());
  const ReplayBundle bundle = load_replay_bundle(failed.front()->bundle_path);
  const EventTrace trace = load_trace_file(bundle.trace_path);
  ASSERT_GT(trace.count(), 8u);

  // Intact trace: nothing to bisect.
  BisectReport rep = bisect_divergence(chaos_sweep(1), bundle, trace);
  EXPECT_FALSE(rep.diverged);
  EXPECT_EQ(rep.probes, 0u);

  // Inject a single-event divergence mid-trace; the per-event pass and the
  // chain binary search must independently pin the same event.
  std::vector<TraceRecord> tampered = trace.decode();
  const std::uint64_t k = trace.count() / 2;
  tampered[static_cast<std::size_t>(k)].digest ^= 0x5a5a5a5a;
  rep = bisect_divergence(chaos_sweep(1), bundle,
                          EventTrace::from_records(tampered));
  EXPECT_TRUE(rep.diverged);
  ASSERT_TRUE(rep.first.has_value());
  EXPECT_EQ(rep.first->what, Divergence::What::kDigest);
  EXPECT_EQ(rep.first->index, k);
  EXPECT_EQ(rep.bisect_index, k);
  EXPECT_TRUE(rep.indices_agree) << rep.note;
  EXPECT_GT(rep.probes, 0u);
  EXPECT_EQ(rep.recorded_events, trace.count());
}

TEST(RecordReplay, FaultKnobChangeDivergesFromTheRecordedTrace) {
  // The bench_replay --fault-<knob> story: mutate the bundle's fault
  // identity and the replay legitimately stops matching its trace.
  SweepConfig cfg = chaos_sweep(1);
  cfg.record_trace = true;
  cfg.failure_dir = fresh_dir("knob_change");
  const SweepResult res = SweepRunner(cfg).run();
  const auto failed = res.failed_runs();
  ASSERT_FALSE(failed.empty());
  ReplayBundle bundle = load_replay_bundle(failed.front()->bundle_path);
  const EventTrace trace = load_trace_file(bundle.trace_path);

  bundle.fault.timer_drop_prob = 0.0;  // the watchdog kill switch, off
  const ReplayCheckResult checked = check_replay(chaos_sweep(1), bundle, trace);
  ASSERT_TRUE(checked.divergence.has_value());
  EXPECT_LT(checked.divergence->index, trace.count());
}

TEST(RecordReplay, CheckReplayRefusesCrashBundles) {
  ReplayBundle bundle;
  bundle.failure.kind = RunFailure::Kind::kCrash;
  EventTrace trace;
  trace.append(1, 0, 0);
  EXPECT_SIM_ERROR((void)check_replay(chaos_sweep(1), bundle, trace),
                   "forked child");
}

TEST(RecordReplay, TraceBytesIdenticalAcrossThreadsAndBackends) {
  // The determinism contract extends to traces: any -j, either backend,
  // byte-identical trace files per run index. The fork leg additionally
  // proves traces survive crash-isolated children (the file is written
  // inside the child; the path rides the pipe protocol back).
  struct Leg {
    const char* name;
    unsigned threads;
    BackendKind backend;
  };
  const Leg legs[] = {
      {"j1", 1, BackendKind::kThread},
      {"j4", 4, BackendKind::kThread},
      {"fork", 2, BackendKind::kFork},
  };
  std::vector<SweepResult> results;
  for (const Leg& leg : legs) {
    SweepConfig cfg = chaos_sweep(leg.threads);
    cfg.backend = leg.backend;
    cfg.record_trace = true;
    cfg.failure_dir = fresh_dir(std::string("bytes_") + leg.name);
    results.push_back(SweepRunner(cfg).run());
  }
  const auto baseline = results[0].failed_runs();
  ASSERT_GE(baseline.size(), 2u);
  for (std::size_t leg = 1; leg < results.size(); ++leg) {
    const auto other = results[leg].failed_runs();
    ASSERT_EQ(other.size(), baseline.size()) << legs[leg].name;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(baseline[i]->run_index, other[i]->run_index);
      ASSERT_FALSE(other[i]->trace_path.empty()) << legs[leg].name;
      EXPECT_EQ(slurp(baseline[i]->trace_path), slurp(other[i]->trace_path))
          << legs[leg].name << " run " << other[i]->run_index;
    }
  }
}

TEST(RecordReplay, RecordingLeavesSweepExportsByteIdentical) {
  const SweepResult bare = SweepRunner(chaos_sweep(2)).run();

  SweepConfig cfg = chaos_sweep(2);
  cfg.record_trace = true;
  cfg.failure_dir = fresh_dir("observational");
  const SweepResult recorded = SweepRunner(cfg).run();

  EXPECT_EQ(bare.to_csv(), recorded.to_csv());
  EXPECT_EQ(bare.to_json(), recorded.to_json());
  ASSERT_EQ(bare.runs.size(), recorded.runs.size());
  for (std::size_t i = 0; i < bare.runs.size(); ++i) {
    SweepRun a = bare.runs[i];
    SweepRun b = recorded.runs[i];
    // Artifact paths differ by design (bare wrote none); everything that
    // feeds results must not.
    a.bundle_path.clear();
    b.bundle_path.clear();
    b.trace_path.clear();
    EXPECT_EQ(scrubbed_record(a), scrubbed_record(b)) << "run " << i;
  }
}

}  // namespace
}  // namespace paratick::core::record_replay
