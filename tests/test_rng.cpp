#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"

namespace paratick::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t x = r.uniform_int(3, 7);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 7);
    saw_lo |= x == 3;
    saw_hi |= x == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng r(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng r(17);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(123.0);
  EXPECT_NEAR(sum / n, 123.0, 2.0);
}

TEST(Rng, NormalMomentsConverge) {
  Rng r(19);
  double sum = 0.0, sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(100.0, 10.0, -1e9);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 100.0, 0.2);
  EXPECT_NEAR(std::sqrt(var), 10.0, 0.2);
}

TEST(Rng, NormalRespectsFloor) {
  Rng r(23);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(r.normal(1.0, 100.0, 0.0), 0.0);
}

TEST(Rng, ParetoStaysInBounds) {
  Rng r(29);
  for (int i = 0; i < 10'000; ++i) {
    const double x = r.pareto(1.5, 2.0, 50.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 50.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r(31);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExpTimeAtLeastOneNanosecond) {
  Rng r(37);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.exp_time(SimTime::ns(2)).nanoseconds(), 1);
  }
}

TEST(Rng, NormalTimeAtLeastOneNanosecond) {
  Rng r(41);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.normal_time(SimTime::ns(5), SimTime::ns(100)).nanoseconds(), 1);
  }
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(55);
  Rng child = parent.split();
  // The child stream should not replay the parent's outputs.
  Rng parent2(55);
  parent2.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent.next_u64()) ++same;
  }
  EXPECT_LE(same, 1);
}

}  // namespace
}  // namespace paratick::sim
