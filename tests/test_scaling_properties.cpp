// Scaling property tests: exit rates respond to workload and
// configuration knobs in the directions the paper's formulas predict.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/system.hpp"
#include "workload/micro.hpp"

namespace paratick::core {
namespace {

using sim::Frequency;
using sim::SimTime;

std::uint64_t storm_timer_exits(guest::TickMode mode, double rate_hz,
                                double guest_tick_hz = 250.0) {
  SystemSpec spec;
  spec.machine = hw::MachineSpec::small(4);
  spec.max_duration = SimTime::sec(1);
  spec.stop_when_done = false;
  VmSpec vm;
  vm.vcpus = 4;
  vm.guest.tick_mode = mode;
  vm.guest.tick_freq = Frequency{guest_tick_hz};
  vm.setup = [rate_hz](guest::GuestKernel& k) {
    workload::SyncStormSpec storm;
    storm.threads = 4;
    storm.sync_rate_hz = rate_hz;
    storm.duration = SimTime::sec(1);
    storm.load = 0.4;
    workload::install_sync_storm(k, storm);
  };
  spec.vms.push_back(std::move(vm));
  System system(std::move(spec));
  return system.run().exits_timer_related;
}

// §3.2: tickless timer exits grow linearly with the idle-transition rate.
TEST(Scaling, DynticksExitsScaleWithTransitionRate) {
  const auto low = storm_timer_exits(guest::TickMode::kDynticksIdle, 250.0);
  const auto high = storm_timer_exits(guest::TickMode::kDynticksIdle, 1000.0);
  // 4x the barrier rate -> roughly 4x the transition term. With the fixed
  // active-tick term included, expect a 2.5x-4.5x increase.
  const double ratio = static_cast<double>(high) / static_cast<double>(low);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 5.0);
}

// §4.2: paratick's exit count must NOT scale with the transition rate.
TEST(Scaling, ParatickExitsFlatAcrossTransitionRates) {
  const auto low = storm_timer_exits(guest::TickMode::kParatick, 250.0);
  const auto high = storm_timer_exits(guest::TickMode::kParatick, 1000.0);
  const double ratio = static_cast<double>(high) / static_cast<double>(std::max<std::uint64_t>(low, 1));
  EXPECT_LT(ratio, 1.3);
}

// §3.1: periodic exits scale with the guest tick frequency, not the load.
TEST(Scaling, PeriodicExitsScaleWithTickFrequency) {
  const auto hz250 = storm_timer_exits(guest::TickMode::kPeriodic, 250.0, 250.0);
  const auto hz1000 = storm_timer_exits(guest::TickMode::kPeriodic, 250.0, 1000.0);
  const double ratio = static_cast<double>(hz1000) / static_cast<double>(hz250);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
}

// Full-system full-dynticks: single-task guests approach paratick's floor.
TEST(Scaling, FullDynticksMatchesParatickForSingleTask) {
  auto run_compute = [](guest::TickMode mode) {
    ExperimentSpec exp;
    exp.machine = hw::MachineSpec::small(1);
    exp.vcpus = 1;
    exp.setup = [](guest::GuestKernel& k) {
      workload::PureComputeSpec pc;
      pc.total_cycles = 400'000'000;
      pc.chunks = 400;
      workload::install_pure_compute(k, pc);
    };
    return run_mode(exp, mode);
  };
  const auto dyn = run_compute(guest::TickMode::kDynticksIdle);
  const auto full = run_compute(guest::TickMode::kFullDynticks);
  const auto para = run_compute(guest::TickMode::kParatick);
  EXPECT_LT(full.exits_total, dyn.exits_total / 2);
  // Within ~20% of paratick's floor.
  EXPECT_LT(static_cast<double>(full.exits_total),
            static_cast<double>(para.exits_total) * 1.25);
}

// Full-dynticks degenerates to dynticks for multi-task CPUs.
TEST(Scaling, FullDynticksDegeneratesUnderContention) {
  auto run_two_tasks = [](guest::TickMode mode) {
    SystemSpec spec;
    spec.machine = hw::MachineSpec::small(1);
    spec.max_duration = SimTime::sec(2);
    VmSpec vm;
    vm.vcpus = 1;
    vm.guest.tick_mode = mode;
    vm.setup = [](guest::GuestKernel& k) {
      for (int t = 0; t < 2; ++t) {
        workload::PureComputeSpec pc;
        pc.total_cycles = 500'000'000;
        pc.chunks = 500;
        workload::install_pure_compute(k, pc);
      }
    };
    spec.vms.push_back(std::move(vm));
    System system(std::move(spec));
    return system.run().exits_timer_related;
  };
  const auto dyn = run_two_tasks(guest::TickMode::kDynticksIdle);
  const auto full = run_two_tasks(guest::TickMode::kFullDynticks);
  // Two runnable tasks: the adaptive stop never triggers.
  EXPECT_NEAR(static_cast<double>(full), static_cast<double>(dyn),
              static_cast<double>(dyn) * 0.1);
}

// Host tick frequency scales paratick's (injected) tick exits but the
// guest still sees its declared rate (tested elsewhere); here: timer
// exits for a busy paratick guest == host tick exits.
TEST(Scaling, ParatickTimerExitsEqualHostTicks) {
  ExperimentSpec exp;
  exp.machine = hw::MachineSpec::small(1);
  exp.vcpus = 1;
  exp.max_duration = SimTime::sec(2);
  exp.setup = [](guest::GuestKernel& k) {
    workload::PureComputeSpec pc;
    pc.total_cycles = 4'000'000'000;
    pc.chunks = 4000;
    workload::install_pure_compute(k, pc);
  };
  const auto r = run_mode(exp, guest::TickMode::kParatick);
  const auto host_ticks =
      r.exits_by_cause[static_cast<std::size_t>(hw::ExitCause::kHostTick)];
  // Aside from boot artifacts, every timer-related exit is a host tick.
  EXPECT_NEAR(static_cast<double>(r.exits_timer_related),
              static_cast<double>(host_ticks), 5.0);
}

}  // namespace
}  // namespace paratick::core
