// Server-workload and wake-latency-tail tests (the latency extension).
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "workload/micro.hpp"

namespace paratick::workload {
namespace {

using sim::SimTime;

metrics::RunResult run_server(guest::TickMode mode) {
  core::ExperimentSpec exp;
  exp.machine = hw::MachineSpec::small(2);
  exp.vcpus = 2;
  exp.max_duration = SimTime::sec(20);
  exp.setup = [](guest::GuestKernel& k) {
    ServerSpec server;
    server.workers = 2;
    server.mean_interarrival = SimTime::us(400);
    server.requests_per_worker = 800;
    install_server(k, server);
  };
  return core::run_mode(exp, mode);
}

TEST(Server, CompletesAllRequests) {
  const auto r = run_server(guest::TickMode::kDynticksIdle);
  ASSERT_TRUE(r.completion_time().has_value());
  // Nearly every request is a sleep (block) + wake; very short exponential
  // draws can fire before the task finishes blocking (futex fast path).
  EXPECT_GE(r.vms[0].task_blocks, 1500u);
  EXPECT_LE(r.vms[0].task_blocks, 1600u);
  EXPECT_GE(r.vms[0].wakeup_latency_us.count(), 1500u);
}

TEST(Server, InterarrivalIsExponential) {
  // Mean wall time ≈ requests * (interarrival + service).
  const auto r = run_server(guest::TickMode::kDynticksIdle);
  ASSERT_TRUE(r.completion_time().has_value());
  const double expected_ms = 800 * (0.4 + 0.02);  // per worker, in ms
  EXPECT_NEAR(r.completion_time()->milliseconds(), expected_ms, expected_ms * 0.2);
}

TEST(Server, ParatickCutsMeanWakeLatency) {
  const auto dyn = run_server(guest::TickMode::kDynticksIdle);
  const auto para = run_server(guest::TickMode::kParatick);
  EXPECT_LT(para.vms[0].wakeup_latency_us.mean(),
            dyn.vms[0].wakeup_latency_us.mean() * 0.6);
}

TEST(Server, ParatickCutsTailLatency) {
  const auto dyn = run_server(guest::TickMode::kDynticksIdle);
  const auto para = run_server(guest::TickMode::kParatick);
  EXPECT_LT(para.vms[0].wakeup_latency_hist_us.percentile(99.0),
            dyn.vms[0].wakeup_latency_hist_us.percentile(99.0));
}

TEST(Server, HistogramConsistentWithAccumulator) {
  const auto r = run_server(guest::TickMode::kDynticksIdle);
  EXPECT_EQ(r.vms[0].wakeup_latency_hist_us.count(),
            r.vms[0].wakeup_latency_us.count());
  EXPECT_GE(r.vms[0].wakeup_latency_us.max(),
            r.vms[0].wakeup_latency_us.mean());
}

}  // namespace
}  // namespace paratick::workload
