#include <gtest/gtest.h>

#include "sim/types.hpp"

namespace paratick::sim {
namespace {

TEST(SimTime, FactoryUnitsAgree) {
  EXPECT_EQ(SimTime::us(1), SimTime::ns(1000));
  EXPECT_EQ(SimTime::ms(1), SimTime::us(1000));
  EXPECT_EQ(SimTime::sec(1), SimTime::ms(1000));
  EXPECT_EQ(SimTime::from_seconds(0.5), SimTime::ms(500));
}

TEST(SimTime, ZeroAndMax) {
  EXPECT_EQ(SimTime::zero().nanoseconds(), 0);
  EXPECT_GT(SimTime::max(), SimTime::sec(1'000'000));
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::us(5);
  const SimTime b = SimTime::us(3);
  EXPECT_EQ(a + b, SimTime::us(8));
  EXPECT_EQ(a - b, SimTime::us(2));
  EXPECT_EQ(a * 3, SimTime::us(15));
  EXPECT_EQ(3 * a, SimTime::us(15));
  EXPECT_EQ(a / b, 1);
  EXPECT_EQ(a % b, SimTime::us(2));
  EXPECT_EQ(a / 5, SimTime::us(1));
}

TEST(SimTime, CompoundAssignment) {
  SimTime t = SimTime::ms(1);
  t += SimTime::ms(2);
  EXPECT_EQ(t, SimTime::ms(3));
  t -= SimTime::ms(1);
  EXPECT_EQ(t, SimTime::ms(2));
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::ns(1), SimTime::ns(2));
  EXPECT_LE(SimTime::ns(2), SimTime::ns(2));
  EXPECT_GT(SimTime::us(1), SimTime::ns(999));
}

TEST(SimTime, ConversionsToFloating) {
  EXPECT_DOUBLE_EQ(SimTime::us(1500).milliseconds(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::ms(2500).seconds(), 2.5);
  EXPECT_DOUBLE_EQ(SimTime::ns(1500).microseconds(), 1.5);
}

TEST(SimTime, ToStringPicksUnit) {
  EXPECT_EQ(to_string(SimTime::ns(5)), "5ns");
  EXPECT_NE(to_string(SimTime::us(5)).find("us"), std::string::npos);
  EXPECT_NE(to_string(SimTime::ms(5)).find("ms"), std::string::npos);
  EXPECT_NE(to_string(SimTime::sec(5)).find("s"), std::string::npos);
}

TEST(Cycles, Arithmetic) {
  const Cycles a{100};
  const Cycles b{40};
  EXPECT_EQ((a + b).count(), 140);
  EXPECT_EQ((a - b).count(), 60);
  EXPECT_EQ((a * 2).count(), 200);
  EXPECT_EQ((2 * a).count(), 200);
  Cycles c = a;
  c += b;
  EXPECT_EQ(c.count(), 140);
  c -= a;
  EXPECT_EQ(c.count(), 40);
}

TEST(Cycles, Comparisons) {
  EXPECT_LT(Cycles{1}, Cycles{2});
  EXPECT_EQ(Cycles::zero().count(), 0);
}

TEST(Frequency, PeriodInversion) {
  EXPECT_EQ(Frequency{250.0}.period(), SimTime::ms(4));
  EXPECT_EQ(Frequency{1000.0}.period(), SimTime::ms(1));
  EXPECT_EQ(Frequency{100.0}.period(), SimTime::ms(10));
}

TEST(CpuFrequency, RoundTripConversion) {
  const CpuFrequency f{2.0};
  EXPECT_EQ(f.time_for(Cycles{2000}), SimTime::us(1));
  EXPECT_EQ(f.cycles_in(SimTime::us(1)).count(), 2000);
  // Round trip within integer truncation.
  const Cycles c{123'456};
  EXPECT_NEAR(static_cast<double>(f.cycles_in(f.time_for(c)).count()),
              static_cast<double>(c.count()), 2.0);
}

TEST(CpuFrequency, OneGhzIdentity) {
  const CpuFrequency f{1.0};
  EXPECT_EQ(f.time_for(Cycles{777}).nanoseconds(), 777);
  EXPECT_EQ(f.cycles_in(SimTime::ns(777)).count(), 777);
}

}  // namespace
}  // namespace paratick::sim
