#include <gtest/gtest.h>

#include "expect_error.hpp"

#include <cmath>
#include <limits>

#include "sim/stats.hpp"

namespace paratick::sim {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
  EXPECT_NEAR(a.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Accumulator, SingleSample) {
  Accumulator a;
  a.add(3.5);
  EXPECT_DOUBLE_EQ(a.mean(), 3.5);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 3.5);
  EXPECT_DOUBLE_EQ(a.max(), 3.5);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.7 - 20.0;
    whole.add(x);
    (i < 50 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  Accumulator b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Accumulator, MergeSingleSampleBothDirections) {
  // Welford merge with n == 1 on either side exercises the delta term with
  // a zero-M2 operand — a classic source of sign/ordering bugs.
  Accumulator many;
  for (double x : {1.0, 2.0, 3.0, 4.0}) many.add(x);
  Accumulator one;
  one.add(10.0);

  Accumulator ref;
  for (double x : {1.0, 2.0, 3.0, 4.0, 10.0}) ref.add(x);

  Accumulator a = many;
  a.merge(one);
  EXPECT_EQ(a.count(), ref.count());
  EXPECT_NEAR(a.mean(), ref.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), ref.variance(), 1e-9);

  Accumulator b = one;
  b.merge(many);
  EXPECT_EQ(b.count(), ref.count());
  EXPECT_NEAR(b.mean(), ref.mean(), 1e-12);
  EXPECT_NEAR(b.variance(), ref.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(b.min(), 1.0);
  EXPECT_DOUBLE_EQ(b.max(), 10.0);
}

TEST(Accumulator, MergeOrderInvariance) {
  // The sweep aggregates replicas in run-index order, but nothing about the
  // merge may depend on association: ((a+b)+c) == (a+(b+c)) == sequential.
  Accumulator parts[3], seq;
  for (int i = 0; i < 90; ++i) {
    const double x = 0.1 * i * i - 3.0 * i + 7.0;
    parts[i % 3].add(x);
    seq.add(x);
  }
  Accumulator left = parts[0];
  left.merge(parts[1]);
  left.merge(parts[2]);
  Accumulator right = parts[1];
  right.merge(parts[2]);
  Accumulator tree = parts[0];
  tree.merge(right);
  for (const Accumulator* m : {&left, &tree}) {
    EXPECT_EQ(m->count(), seq.count());
    EXPECT_NEAR(m->mean(), seq.mean(), 1e-9);
    EXPECT_NEAR(m->variance(), seq.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(m->min(), seq.min());
    EXPECT_DOUBLE_EQ(m->max(), seq.max());
  }
}

TEST(Accumulator, MergeEmptyIntoEmpty) {
  Accumulator a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, Ci95HalfWidth) {
  Accumulator none;
  EXPECT_DOUBLE_EQ(none.ci95_half_width(), 0.0);
  Accumulator one;
  one.add(5.0);
  EXPECT_DOUBLE_EQ(one.ci95_half_width(), 0.0);  // undefined below n=2

  // n = 2: t(df=1, .975) = 12.706, se = stddev / sqrt(2).
  Accumulator two;
  two.add(1.0);
  two.add(3.0);
  const double se2 = two.stddev() / std::sqrt(2.0);
  EXPECT_NEAR(two.ci95_half_width(), 12.706 * se2, 1e-9);

  // Large n converges to the normal quantile 1.96.
  Accumulator big;
  for (int i = 0; i < 400; ++i) big.add(static_cast<double>(i % 20));
  const double se = big.stddev() / std::sqrt(400.0);
  EXPECT_NEAR(big.ci95_half_width(), 1.96 * se, 1e-9);

  // The interval shrinks as evidence accumulates at fixed spread.
  EXPECT_LT(big.ci95_half_width(), two.ci95_half_width());
}

TEST(LogHistogram, RejectsNaNSamples) {
  // NaN compares false against every bucket boundary, so before the check
  // it silently counted in bucket 0 and skewed every percentile.
  LogHistogram h;
  h.add(3.0);
  EXPECT_SIM_ERROR(h.add(std::numeric_limits<double>::quiet_NaN()),
                   "sample is NaN");
  EXPECT_EQ(h.count(), 1u);  // the bad sample left no trace
}

TEST(LogHistogram, RejectsNegativeSamples) {
  LogHistogram h;
  EXPECT_SIM_ERROR(h.add(-0.001), "sample is negative");
  EXPECT_SIM_ERROR(h.add(-std::numeric_limits<double>::infinity()),
                   "sample is negative");
  EXPECT_EQ(h.count(), 0u);
}

TEST(LogHistogram, AcceptsZeroAndInfinity) {
  // Boundary samples stay legal: zero lands in the [0, 2) catch-all and
  // +inf saturates into the top bucket rather than failing.
  LogHistogram h;
  h.add(0.0);
  h.add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.buckets().front(), 1u);
}

TEST(LogHistogram, MergeSumsBuckets) {
  LogHistogram a, b, ref;
  for (double x : {0.5, 3.0, 3.5, 100.0}) {
    a.add(x);
    ref.add(x);
  }
  for (double x : {1.0, 5.0, 100.0, 4000.0}) {
    b.add(x);
    ref.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), ref.count());
  ASSERT_EQ(a.buckets().size(), ref.buckets().size());
  for (std::size_t i = 0; i < ref.buckets().size(); ++i) {
    EXPECT_EQ(a.buckets()[i], ref.buckets()[i]) << "bucket " << i;
  }
  for (double p : {50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), ref.percentile(p));
  }
  // Merging an empty histogram is a no-op in both directions.
  LogHistogram empty;
  const std::uint64_t before = a.count();
  a.merge(empty);
  EXPECT_EQ(a.count(), before);
  empty.merge(a);
  EXPECT_EQ(empty.count(), before);
}

TEST(LogHistogram, CountsAndBuckets) {
  LogHistogram h;
  h.add(0.5);   // bucket 0
  h.add(1.0);   // bucket 0
  h.add(3.0);   // bucket 1 [2,4)
  h.add(5.0);   // bucket 2 [4,8)
  EXPECT_EQ(h.count(), 4u);
  ASSERT_GE(h.buckets().size(), 3u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
}

TEST(LogHistogram, PercentilesMonotonic) {
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  double last = 0.0;
  for (double p : {0.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
    const double v = h.percentile(p);
    EXPECT_GE(v, last);
    last = v;
  }
  // Median of 1..1000 should land in the [512,1024) bucket's vicinity.
  EXPECT_GE(h.percentile(50.0), 256.0);
  EXPECT_LE(h.percentile(50.0), 1024.0);
}

TEST(LogHistogram, EmptyPercentileIsZero) {
  LogHistogram h;
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
}

TEST(LogHistogram, ToStringListsNonEmptyBuckets) {
  LogHistogram h;
  h.add(3.0);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("[2, 4): 1"), std::string::npos);
}

TEST(LogHistogram, BucketZeroBoundsLabelAndMidpointAgree) {
  // Regression: bucket 0 holds every x < 2 (including sub-1.0 samples) but
  // used to be labelled [1, 2) and reported midpoint 1.5 — inconsistent
  // with its actual contents. It is now the [0, 2) catch-all, midpoint 1.
  LogHistogram h;
  h.add(0.25);
  h.add(0.5);
  h.add(1.5);
  EXPECT_EQ(h.buckets()[0], 3u);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("[0, 2): 3"), std::string::npos);
  EXPECT_EQ(s.find("[1, 2)"), std::string::npos);
  // Every percentile of a bucket-0-only histogram is the bucket midpoint,
  // which must lie inside the advertised [0, 2) bounds.
  for (double p : {0.0, 50.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 1.0);
  }
}

TEST(LogHistogram, HigherBucketMidpointsUnchanged) {
  LogHistogram h;
  for (int i = 0; i < 10; ++i) h.add(3.0);  // bucket 1 = [2, 4)
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 3.0);
}

}  // namespace
}  // namespace paratick::sim
