// Guest steal-time estimator tests: the platform-agnostic sampling
// estimator must read (near) zero on an uncontended host, produce a
// nonzero signal under real contention without exceeding the
// hypervisor's ground truth, and stay deterministic — it feeds the
// cluster scheduler, so a noisy or inflated estimate migrates VMs for
// no reason.
#include <gtest/gtest.h>

#include "expect_error.hpp"

#include "core/system.hpp"
#include "workload/micro.hpp"

namespace paratick::core {
namespace {

using sim::SimTime;

/// `vms` copies of a 2-vCPU storm VM on `pcpus` physical CPUs.
SystemSpec storm_host(int vms, std::uint32_t pcpus, double load,
                      bool estimator = true) {
  SystemSpec sys;
  sys.machine = hw::MachineSpec::small(pcpus);
  sys.host.sched_mode =
      2 * static_cast<std::uint32_t>(vms) > pcpus ? hv::SchedMode::kShared
                                                  : hv::SchedMode::kPinned;
  sys.host.seed = 7;
  sys.max_duration = SimTime::ms(80);
  sys.stop_when_done = false;
  for (int v = 0; v < vms; ++v) {
    VmSpec vm;
    vm.vcpus = 2;
    vm.guest.tick_mode = guest::TickMode::kDynticksIdle;
    vm.guest.steal.enabled = estimator;
    vm.guest.seed = 1000 + static_cast<std::uint64_t>(v);
    vm.setup = [load](guest::GuestKernel& k) {
      workload::SyncStormSpec storm;
      storm.threads = 2;
      storm.sync_rate_hz = 400.0;
      storm.duration = SimTime::ms(80);
      storm.load = load;
      workload::install_sync_storm(k, storm);
    };
    sys.vms.push_back(vm);
  }
  return sys;
}

metrics::RunResult run_host(SystemSpec spec) {
  System sys(std::move(spec));
  sys.power_on();
  sys.engine().run_until(SimTime::ms(80));
  return sys.finish();
}

TEST(StealEstimator, UncontendedHostReadsNearZero) {
  // 1 VM x 2 vCPUs on 2 pCPUs, pinned: nothing to steal. Benign delivery
  // lateness sits under the noise floor, so the estimate stays ~0 even
  // though sampling ran the whole time.
  const auto r = run_host(storm_host(1, 2, 0.4));
  ASSERT_EQ(r.vms.size(), 1u);
  ASSERT_TRUE(r.vms[0].steal_estimate.has_value());
  EXPECT_LE(r.vms[0].steal_estimate->microseconds(), 100.0);
}

TEST(StealEstimator, DisabledLeavesNoEstimate) {
  const auto r = run_host(storm_host(1, 2, 0.4, /*estimator=*/false));
  ASSERT_EQ(r.vms.size(), 1u);
  EXPECT_FALSE(r.vms[0].steal_estimate.has_value());
}

TEST(StealEstimator, ContentionYieldsSignalBoundedByGroundTruth) {
  // 4 VMs x 2 vCPUs on 2 pCPUs (4x overcommit, shared): heavy storms
  // guarantee runqueue waits. The sampler must see some of that steal —
  // and, since each sample only observes its own delivery delay, it can
  // never exceed what the hypervisor ledger recorded.
  const auto r = run_host(storm_host(4, 2, 0.8));
  SimTime truth;
  SimTime estimate;
  for (const auto& vm : r.vms) {
    truth += vm.steal_time;
    ASSERT_TRUE(vm.steal_estimate.has_value());
    estimate += *vm.steal_estimate;
  }
  EXPECT_GT(truth, SimTime::ms(1));
  EXPECT_GT(estimate, SimTime::zero());
  EXPECT_LT(estimate, truth);
}

TEST(StealEstimator, DeterministicForFixedSeeds) {
  const auto a = run_host(storm_host(4, 2, 0.8));
  const auto b = run_host(storm_host(4, 2, 0.8));
  ASSERT_EQ(a.vms.size(), b.vms.size());
  for (std::size_t v = 0; v < a.vms.size(); ++v) {
    ASSERT_TRUE(a.vms[v].steal_estimate && b.vms[v].steal_estimate);
    EXPECT_EQ(a.vms[v].steal_estimate->nanoseconds(),
              b.vms[v].steal_estimate->nanoseconds());
    EXPECT_EQ(a.vms[v].steal_time.nanoseconds(), b.vms[v].steal_time.nanoseconds());
  }
}

TEST(StealEstimator, RejectsZeroSamplePeriod) {
  SystemSpec spec = storm_host(1, 2, 0.4);
  spec.vms[0].guest.steal.sample_period = SimTime::zero();
  System sys(std::move(spec));
  sys.power_on();
  // The estimator arms when the vCPU first boots, inside the event loop.
  EXPECT_SIM_ERROR(sys.engine().run_until(SimTime::ms(1)), "sample period");
}

}  // namespace
}  // namespace paratick::core
