#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/exec_backend.hpp"
#include "core/replay.hpp"
#include "core/sweep.hpp"
#include "core/sweep_shard.hpp"
#include "core/thread_pool.hpp"
#include "sim/error.hpp"
#include "workload/micro.hpp"

namespace paratick::core {
namespace {

SweepConfig tiny_sweep(unsigned threads, int repeat = 2) {
  SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(2);
  cfg.base.vcpus = 2;
  cfg.base.max_duration = sim::SimTime::ms(50);
  cfg.base.stop_when_done = false;
  cfg.modes = {guest::TickMode::kDynticksIdle, guest::TickMode::kParatick};
  cfg.repeat = repeat;
  cfg.root_seed = 77;
  cfg.threads = threads;
  for (const char* name : {"idle", "storm"}) {
    const bool storm = std::string(name) == "storm";
    cfg.variants.push_back({name, [storm](ExperimentSpec& exp) {
      if (!storm) return;
      exp.setup = [](guest::GuestKernel& k) {
        workload::SyncStormSpec spec;
        spec.threads = 2;
        spec.sync_rate_hz = 400.0;
        spec.duration = sim::SimTime::ms(50);
        spec.load = 0.3;
        workload::install_sync_storm(k, spec);
      };
    }});
  }
  return cfg;
}

TEST(DeriveSeed, PureAndWellSpread) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t root : {1ull, 2ull, 999ull}) {
    for (std::uint64_t i = 0; i < 100; ++i) seen.insert(derive_seed(root, i));
  }
  EXPECT_EQ(seen.size(), 300u);  // no collisions across roots or indices
}

TEST(SweepRunner, GridExpansion) {
  SweepConfig cfg = tiny_sweep(1, 3);
  cfg.tick_freqs_hz = {100.0, 250.0};
  const SweepRunner runner(cfg);
  // 2 variants x 2 modes x 2 freqs
  EXPECT_EQ(runner.cell_count(), 8u);
  EXPECT_EQ(runner.total_runs(), 24u);
}

TEST(SweepRunner, ParallelMatchesSerialBitExactly) {
  // The determinism contract: per-run seeds depend only on (root_seed, run
  // index) and aggregation happens in run-index order, so any -j value
  // produces bit-identical metrics.
  const SweepResult serial = SweepRunner(tiny_sweep(1)).run();
  const SweepResult parallel = SweepRunner(tiny_sweep(4)).run();

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());

  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    EXPECT_EQ(serial.runs[i].seed, parallel.runs[i].seed);
    EXPECT_EQ(serial.runs[i].cell, parallel.runs[i].cell);
    EXPECT_EQ(serial.runs[i].result.exits_total, parallel.runs[i].result.exits_total);
    EXPECT_EQ(serial.runs[i].result.exits_timer_related,
              parallel.runs[i].result.exits_timer_related);
    EXPECT_EQ(serial.runs[i].result.events_executed,
              parallel.runs[i].result.events_executed);
    EXPECT_EQ(serial.runs[i].result.busy_cycles().count(),
              parallel.runs[i].result.busy_cycles().count());
  }
  for (std::size_t c = 0; c < serial.cells.size(); ++c) {
    const auto& a = serial.cells[c];
    const auto& b = parallel.cells[c];
    EXPECT_EQ(a.key.label(), b.key.label());
    EXPECT_EQ(a.exits_total.count(), b.exits_total.count());
    // Bit-identical, not just close: EXPECT_EQ on doubles is deliberate.
    EXPECT_EQ(a.exits_total.mean(), b.exits_total.mean());
    EXPECT_EQ(a.exits_timer.mean(), b.exits_timer.mean());
    EXPECT_EQ(a.busy_cycles.mean(), b.busy_cycles.mean());
    EXPECT_EQ(a.busy_cycles.stddev(), b.busy_cycles.stddev());
    EXPECT_EQ(a.wakeup_latency_us.count(), b.wakeup_latency_us.count());
    EXPECT_EQ(a.wakeup_latency_us.mean(), b.wakeup_latency_us.mean());
  }
  // And the exported artifacts match byte for byte.
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
}

TEST(SweepRunner, ReplicasUseDistinctSeeds) {
  const SweepResult res = SweepRunner(tiny_sweep(2, 3)).run();
  std::set<std::uint64_t> seeds;
  for (const auto& run : res.runs) seeds.insert(run.seed);
  EXPECT_EQ(seeds.size(), res.runs.size());
  for (const auto& cell : res.cells) {
    EXPECT_EQ(cell.exits_total.count(), 3u);
  }
}

TEST(SweepRunner, OvercommitAxisResizesMachine) {
  SweepConfig cfg = tiny_sweep(2, 1);
  cfg.base.vcpus = 4;
  cfg.modes = {guest::TickMode::kParatick};
  cfg.variants.clear();
  cfg.overcommit = {1.0, 2.0};
  const SweepResult res = SweepRunner(cfg).run();
  ASSERT_EQ(res.cells.size(), 2u);
  EXPECT_DOUBLE_EQ(res.cells[0].key.overcommit, 1.0);  // 4 vCPUs on 4 pCPUs
  EXPECT_DOUBLE_EQ(res.cells[1].key.overcommit, 2.0);  // 4 vCPUs on 2 pCPUs
  // More overcommit cannot reduce total exits for the same guest load.
  EXPECT_GT(res.cells[1].first.wall.nanoseconds(), 0);
}

TEST(SweepRunner, CompareFindsCells) {
  const SweepResult res = SweepRunner(tiny_sweep(2, 1)).run();
  ASSERT_NE(res.find("storm", guest::TickMode::kParatick), nullptr);
  EXPECT_EQ(res.find("nope", guest::TickMode::kParatick), nullptr);
  const metrics::Comparison c = res.compare("storm", guest::TickMode::kDynticksIdle,
                                            guest::TickMode::kParatick);
  // Paratick never induces more timer exits than dynticks (§4.2).
  EXPECT_LE(c.timer_exit_delta_pct, 0.0);
}

TEST(SweepRunner, CsvAndJsonCoverEveryCell) {
  const SweepResult res = SweepRunner(tiny_sweep(2, 1)).run();
  const std::string csv = res.to_csv();
  const std::string json = res.to_json();
  for (const auto& cell : res.cells) {
    EXPECT_NE(csv.find(cell.key.variant), std::string::npos);
    EXPECT_NE(json.find(cell.key.variant), std::string::npos);
  }
  // Header + one line per cell.
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n')),
            res.cells.size() + 1);
}

// Minimal RFC 4180 reader used to round-trip to_csv(): splits one record,
// honoring quoted fields with doubled quotes.
std::vector<std::string> parse_csv_record(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

TEST(SweepResult, CsvEscapingRoundTripsHostileVariantNames) {
  // Variant names come from user code: device model strings, benchmark
  // labels, anything. Commas, quotes and newlines must survive to_csv().
  const std::vector<std::string> names = {
      "plain", "with,comma", "with \"quotes\"", "comma, \"and\" quotes",
      "trailing space ", "with\nnewline"};
  SweepResult res;
  for (const auto& name : names) {
    SweepCellSummary cell;
    cell.key.variant = name;
    cell.key.mode = guest::TickMode::kParatick;
    cell.key.tick_freq_hz = 250.0;
    cell.key.vcpus = 1;
    cell.exits_total.add(10.0);
    res.cells.push_back(std::move(cell));
  }

  const std::string csv = res.to_csv();
  // Split into physical records: a '\n' inside quotes is data, not a
  // record separator.
  std::vector<std::string> records;
  std::string cur;
  bool quoted = false;
  for (const char c : csv) {
    if (c == '"') quoted = !quoted;
    if (c == '\n' && !quoted) {
      records.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  EXPECT_TRUE(cur.empty());  // file ends in a newline outside quotes
  ASSERT_EQ(records.size(), names.size() + 1);  // header + one per cell

  const std::size_t columns = parse_csv_record(records[0]).size();
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::vector<std::string> fields = parse_csv_record(records[i + 1]);
    ASSERT_EQ(fields.size(), columns) << records[i + 1];
    EXPECT_EQ(fields[0], names[i]);  // exact round-trip, escapes undone
    EXPECT_EQ(fields[1], "paratick");
  }
}

TEST(SweepCli, ParsesHistoryFlags) {
  const char* argv[] = {"bench", "--history-dir", "results/history",
                        "--history-tag", "abc123"};
  const SweepCli cli = SweepCli::parse(static_cast<int>(std::size(argv)),
                                       const_cast<char**>(argv));
  EXPECT_EQ(cli.history_dir, "results/history");
  EXPECT_EQ(cli.history_tag, "abc123");
  EXPECT_TRUE(cli.positional.empty());
}

TEST(SweepCli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"bench", "-j4",     "--repeat", "3",  "--seed",
                        "99",    "--quiet", "--csv",    "small"};
  const SweepCli cli = SweepCli::parse(static_cast<int>(std::size(argv)),
                                       const_cast<char**>(argv));
  EXPECT_EQ(cli.threads, 4u);
  EXPECT_EQ(cli.repeat, 3);
  ASSERT_TRUE(cli.root_seed.has_value());
  EXPECT_EQ(*cli.root_seed, 99u);
  EXPECT_FALSE(cli.progress);
  EXPECT_TRUE(cli.csv);
  ASSERT_EQ(cli.positional.size(), 1u);
  EXPECT_EQ(cli.positional[0], "small");

  SweepConfig cfg;
  cli.apply(cfg);
  EXPECT_EQ(cfg.threads, 4u);
  EXPECT_EQ(cfg.repeat, 3);
  EXPECT_EQ(cfg.root_seed, 99u);
}

TEST(ShardSpec, ParsesAndRejectsMalformedSpecs) {
  const ShardSpec s = ShardSpec::parse("1/4");
  EXPECT_EQ(s.index, 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_TRUE(s.active());
  EXPECT_EQ(s.label(), "1/4");
  // Round-robin slicing partitions the index space.
  for (std::size_t i = 0; i < 16; ++i) {
    unsigned owners = 0;
    for (unsigned k = 0; k < 4; ++k) {
      if (ShardSpec{k, 4}.owns(i)) ++owners;
    }
    EXPECT_EQ(owners, 1u);
  }
  EXPECT_FALSE(ShardSpec::parse("0/1").active());  // trivial shard = unsharded
  for (const char* bad : {"", "x", "2", "2/2", "5/4", "1/0", "-1/2", "a/b"}) {
    EXPECT_THROW((void)ShardSpec::parse(bad), sim::SimError) << bad;
  }
}

TEST(SweepBackends, ForkMatchesThreadByteForByte) {
  // The acceptance bar for the backend split: same plan, different
  // execution strategy, bit-identical artifacts. Covered for two distinct
  // sweep shapes (workload-variant grid, tick-frequency grid).
  for (const bool with_freq_axis : {false, true}) {
    SweepConfig thread_cfg = tiny_sweep(4);
    if (with_freq_axis) thread_cfg.tick_freqs_hz = {100.0, 1000.0};
    SweepConfig fork_cfg = thread_cfg;
    fork_cfg.backend = BackendKind::kFork;

    const SweepResult a = SweepRunner(std::move(thread_cfg)).run();
    const SweepResult b = SweepRunner(std::move(fork_cfg)).run();
    EXPECT_EQ(a.backend_name, "thread");
    EXPECT_EQ(b.backend_name, "fork");
    EXPECT_EQ(a.to_csv(), b.to_csv());
    EXPECT_EQ(a.to_json(), b.to_json());
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
      EXPECT_EQ(a.runs[i].seed, b.runs[i].seed);
      EXPECT_EQ(a.runs[i].result.events_executed, b.runs[i].result.events_executed);
    }
  }
}

TEST(SweepShards, MergeIsShardCountInvariant) {
  // Split the same sweep 1, 2 and 4 ways; each shard writes a partial
  // snapshot, and the merged result must be byte-identical to the
  // single-host run — CSV and JSON both.
  const std::string dir = ::testing::TempDir() + "shard_invariance";
  std::filesystem::remove_all(dir);
  const SweepResult reference = SweepRunner(tiny_sweep(2)).run();

  for (const unsigned shards : {1u, 2u, 4u}) {
    std::vector<PartialSnapshot> partials;
    for (unsigned k = 0; k < shards; ++k) {
      SweepConfig cfg = tiny_sweep(2);
      cfg.shard = ShardSpec{k, shards};
      cfg.output_dir = dir;
      cfg.partial_path =  // relative: must resolve against output_dir
          "partial-" + std::to_string(k) + "of" + std::to_string(shards) + ".json";
      const SweepResult slice = SweepRunner(std::move(cfg)).run();
      EXPECT_LE(slice.executed_run_count(), reference.runs.size());
      const std::string path = dir + "/partial-" + std::to_string(k) + "of" +
                               std::to_string(shards) + ".json";
      ASSERT_TRUE(std::filesystem::exists(path)) << path;
      partials.push_back(load_partial_snapshot(path));
    }
    const SweepResult merged = merge_partial_snapshots(partials);
    EXPECT_EQ(merged.to_csv(), reference.to_csv()) << shards << " shards";
    EXPECT_EQ(merged.to_json(), reference.to_json()) << shards << " shards";
    EXPECT_EQ(merged.executed_run_count(), reference.runs.size());
  }
}

// A sweep where the dynticks cells deterministically fail: every hardware
// timer interrupt is dropped, so the busy dynticks guest breaches the
// watchdog while paratick (no hardware timer) completes. Produces DEGRADED
// cells with real failure records to push through the shard/merge path.
SweepConfig degraded_sweep() {
  SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(1);
  cfg.base.vcpus = 1;
  cfg.base.max_duration = sim::SimTime::ms(200);
  cfg.base.setup = [](guest::GuestKernel& k) {
    workload::PureComputeSpec compute;
    compute.total_cycles = 100'000'000;
    compute.chunks = 100;
    workload::install_pure_compute(k, compute);
  };
  cfg.modes = {guest::TickMode::kDynticksIdle, guest::TickMode::kParatick};
  cfg.fault.timer_drop_prob = 1.0;
  cfg.watchdog = true;
  cfg.repeat = 2;
  cfg.root_seed = 4242;
  cfg.threads = 2;
  return cfg;
}

TEST(SweepShards, MergePreservesDegradedCells) {
  const SweepResult reference = SweepRunner(degraded_sweep()).run();
  ASSERT_GT(reference.degraded_cell_count(), 0u);
  ASSERT_FALSE(reference.failed_runs().empty());

  const std::string dir = ::testing::TempDir() + "shard_degraded";
  std::filesystem::remove_all(dir);
  std::vector<PartialSnapshot> partials;
  for (unsigned k = 0; k < 2; ++k) {
    SweepConfig cfg = degraded_sweep();
    cfg.shard = ShardSpec{k, 2};
    cfg.output_dir = dir;
    cfg.partial_path = "part" + std::to_string(k) + ".json";
    const SweepResult slice = SweepRunner(std::move(cfg)).run();
    partials.push_back(
        load_partial_snapshot(dir + "/part" + std::to_string(k) + ".json"));
  }
  const SweepResult merged = merge_partial_snapshots(partials);
  EXPECT_EQ(merged.to_csv(), reference.to_csv());
  EXPECT_EQ(merged.to_json(), reference.to_json());
  EXPECT_EQ(merged.degraded_cell_count(), reference.degraded_cell_count());
  ASSERT_EQ(merged.failed_runs().size(), reference.failed_runs().size());
  for (std::size_t i = 0; i < merged.failed_runs().size(); ++i) {
    const RunFailure& m = *merged.failed_runs()[i]->failure;
    const RunFailure& r = *reference.failed_runs()[i]->failure;
    EXPECT_EQ(m.kind, r.kind);
    EXPECT_EQ(m.expr, r.expr);
    EXPECT_EQ(m.sim_time_ns, r.sim_time_ns);
  }
}

TEST(SweepShards, CorruptPartialIsAnActionableError) {
  const std::string dir = ::testing::TempDir() + "shard_corrupt";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/partial.json";
  std::ofstream(path) << "{\"kind\": \"paratick-partial-sweep\", \"version\": 1,";
  try {
    (void)load_partial_snapshot(path);
    FAIL() << "corrupt partial must throw";
  } catch (const sim::SimError& e) {
    EXPECT_NE(e.msg().find("corrupt partial snapshot"), std::string::npos) << e.msg();
    EXPECT_NE(e.msg().find(path), std::string::npos) << e.msg();
    EXPECT_NE(e.msg().find("regenerate"), std::string::npos) << e.msg();
  }
}

TEST(SweepShards, MergeRejectsDuplicateAndForeignShards) {
  const std::string dir = ::testing::TempDir() + "shard_reject";
  std::filesystem::remove_all(dir);
  std::vector<PartialSnapshot> partials;
  for (unsigned k = 0; k < 2; ++k) {
    SweepConfig cfg = tiny_sweep(1, 1);
    cfg.shard = ShardSpec{k, 2};
    cfg.output_dir = dir;
    cfg.partial_path = "p" + std::to_string(k) + ".json";
    (void)SweepRunner(std::move(cfg)).run();
    partials.push_back(load_partial_snapshot(dir + "/p" + std::to_string(k) + ".json"));
  }

  // Same shard twice: a run index is covered twice.
  try {
    (void)merge_partial_snapshots({partials[0], partials[0]});
    FAIL() << "duplicate shard must throw";
  } catch (const sim::SimError& e) {
    EXPECT_NE(e.msg().find("same shard twice"), std::string::npos) << e.msg();
  }

  // Missing shard: a run index is covered by no partial.
  try {
    (void)merge_partial_snapshots({partials[0]});
    FAIL() << "missing shard must throw";
  } catch (const sim::SimError& e) {
    EXPECT_NE(e.msg().find("covered by no partial"), std::string::npos) << e.msg();
  }

  // Foreign partial: different sweep identity.
  PartialSnapshot foreign = partials[1];
  foreign.root_seed ^= 1;
  EXPECT_THROW((void)merge_partial_snapshots({partials[0], foreign}),
               sim::SimError);
}

// A sweep whose "boom" variant calls abort() during guest setup — the
// harshest failure a run can produce. Under the fork backend this kills
// the child with SIGABRT; the sweep must survive, record the replica as
// kCrash, and write a replay bundle that reproduces the crash.
SweepConfig crashing_sweep(const std::string& failure_dir) {
  SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(1);
  cfg.base.vcpus = 1;
  cfg.base.max_duration = sim::SimTime::ms(10);
  cfg.modes = {guest::TickMode::kParatick};
  cfg.variants.push_back({"boom", [](ExperimentSpec& exp) {
    exp.setup = [](guest::GuestKernel&) { std::abort(); };
  }});
  cfg.repeat = 1;
  cfg.root_seed = 7;
  cfg.threads = 1;
  cfg.backend = BackendKind::kFork;
  cfg.failure_dir = failure_dir;
  cfg.bench_name = "test_sweep_crash";
  return cfg;
}

TEST(ForkBackend, ChildAbortBecomesFailedReplicaWithReplayBundle) {
  const std::string dir = ::testing::TempDir() + "fork_crash";
  std::filesystem::remove_all(dir);
  const SweepResult res = SweepRunner(crashing_sweep(dir)).run();

  ASSERT_EQ(res.runs.size(), 1u);
  const SweepRun& run = res.runs[0];
  EXPECT_TRUE(run.executed);
  EXPECT_FALSE(run.ok);
  ASSERT_TRUE(run.failure.has_value());
  EXPECT_EQ(run.failure->kind, RunFailure::Kind::kCrash);
  EXPECT_NE(run.failure->message.find("signal"), std::string::npos)
      << run.failure->message;

  // The bundle landed in the per-bench subdirectory and replays: the crash
  // is re-executed in a forked child (execute_run_isolated) so the
  // replayer itself survives, and reproduces() accepts a same-kind death.
  ASSERT_FALSE(run.bundle_path.empty());
  EXPECT_NE(run.bundle_path.find("test_sweep_crash/run0.json"), std::string::npos)
      << run.bundle_path;
  ASSERT_TRUE(std::filesystem::exists(run.bundle_path));
  const ReplayBundle bundle = load_replay_bundle(run.bundle_path);
  EXPECT_EQ(bundle.failure.kind, RunFailure::Kind::kCrash);
  const SweepRun replayed = replay_run(crashing_sweep(""), bundle);
  ASSERT_TRUE(replayed.failure.has_value());
  EXPECT_EQ(replayed.failure->kind, RunFailure::Kind::kCrash);
  std::string detail;
  EXPECT_TRUE(reproduces(bundle, replayed, &detail)) << detail;
}

TEST(ForkBackend, BatchedForkMatchesThreadByteForByte) {
  // --fork-batch changes only how runs are grouped into children; results
  // must stay bit-identical to the thread backend for several batch sizes,
  // including one larger than the whole plan (a single child runs it all).
  const SweepResult reference = SweepRunner(tiny_sweep(4)).run();
  for (const std::size_t batch : {std::size_t{1}, std::size_t{3}, std::size_t{100}}) {
    SweepConfig cfg = tiny_sweep(4);
    cfg.backend = BackendKind::kFork;
    cfg.fork_batch = batch;
    const SweepResult batched = SweepRunner(std::move(cfg)).run();
    EXPECT_EQ(reference.to_csv(), batched.to_csv()) << "batch=" << batch;
    EXPECT_EQ(reference.to_json(), batched.to_json()) << "batch=" << batch;
  }
}

TEST(ForkBackend, MidBatchCrashKeepsFinishedRunsAndRequeuesTail) {
  // One child runs [ok, boom, tail] as a single batch. The completed
  // "ok" record must survive the child's SIGABRT, "boom" becomes the
  // kCrash replica (with a bundle pointing at exactly that run), and the
  // never-started "tail" run is re-enqueued and executed by a fresh child.
  const std::string dir = ::testing::TempDir() + "fork_batch_crash";
  std::filesystem::remove_all(dir);
  const auto make = [&](const std::string& failure_dir) {
    SweepConfig cfg = crashing_sweep(failure_dir);
    cfg.variants.insert(cfg.variants.begin(), {"ok", [](ExperimentSpec&) {}});
    cfg.variants.push_back({"tail", [](ExperimentSpec&) {}});
    cfg.fork_batch = 3;
    return cfg;
  };
  const SweepResult res = SweepRunner(make(dir)).run();

  ASSERT_EQ(res.runs.size(), 3u);
  EXPECT_TRUE(res.runs[0].ok);
  EXPECT_TRUE(res.runs[2].ok);
  const SweepRun& crashed = res.runs[1];
  EXPECT_TRUE(crashed.executed);
  EXPECT_FALSE(crashed.ok);
  ASSERT_TRUE(crashed.failure.has_value());
  EXPECT_EQ(crashed.failure->kind, RunFailure::Kind::kCrash);
  EXPECT_NE(crashed.failure->message.find("signal"), std::string::npos)
      << crashed.failure->message;
  ASSERT_FALSE(crashed.bundle_path.empty());
  EXPECT_NE(crashed.bundle_path.find("test_sweep_crash/run1.json"),
            std::string::npos)
      << crashed.bundle_path;
  ASSERT_TRUE(std::filesystem::exists(crashed.bundle_path));
  const ReplayBundle bundle = load_replay_bundle(crashed.bundle_path);
  const SweepRun replayed = replay_run(make(""), bundle);
  std::string detail;
  EXPECT_TRUE(reproduces(bundle, replayed, &detail)) << detail;

  // The surviving runs must match a clean isolated execution of the same
  // run indices — batching plus a neighbor's crash changed nothing.
  for (const std::size_t idx : {std::size_t{0}, std::size_t{2}}) {
    const SweepRun ref = execute_run_isolated(make(""), idx);
    ASSERT_TRUE(ref.ok);
    EXPECT_EQ(res.runs[idx].seed, ref.seed);
    EXPECT_EQ(res.runs[idx].result.events_executed,
              ref.result.events_executed);
    EXPECT_EQ(res.runs[idx].result.exits_total, ref.result.exits_total);
  }
}

TEST(ForkBackend, IsolatedRunMatchesInProcessRun) {
  // execute_run_isolated is the replay path for crash bundles; for a
  // healthy run it must reproduce the in-process result exactly.
  SweepConfig cfg = tiny_sweep(1, 1);
  const SweepResult reference = SweepRunner(cfg).run();
  const SweepRun isolated = execute_run_isolated(tiny_sweep(1, 1), 0);
  EXPECT_TRUE(isolated.ok);
  EXPECT_EQ(isolated.seed, reference.runs[0].seed);
  EXPECT_EQ(isolated.result.events_executed,
            reference.runs[0].result.events_executed);
  EXPECT_EQ(isolated.result.exits_total, reference.runs[0].result.exits_total);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for_index(hits.size(), 4,
                     [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, PropagatesJobExceptions) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

}  // namespace
}  // namespace paratick::core
