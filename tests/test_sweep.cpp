#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "core/thread_pool.hpp"
#include "workload/micro.hpp"

namespace paratick::core {
namespace {

SweepConfig tiny_sweep(unsigned threads, int repeat = 2) {
  SweepConfig cfg;
  cfg.base.machine = hw::MachineSpec::small(2);
  cfg.base.vcpus = 2;
  cfg.base.max_duration = sim::SimTime::ms(50);
  cfg.base.stop_when_done = false;
  cfg.modes = {guest::TickMode::kDynticksIdle, guest::TickMode::kParatick};
  cfg.repeat = repeat;
  cfg.root_seed = 77;
  cfg.threads = threads;
  for (const char* name : {"idle", "storm"}) {
    const bool storm = std::string(name) == "storm";
    cfg.variants.push_back({name, [storm](ExperimentSpec& exp) {
      if (!storm) return;
      exp.setup = [](guest::GuestKernel& k) {
        workload::SyncStormSpec spec;
        spec.threads = 2;
        spec.sync_rate_hz = 400.0;
        spec.duration = sim::SimTime::ms(50);
        spec.load = 0.3;
        workload::install_sync_storm(k, spec);
      };
    }});
  }
  return cfg;
}

TEST(DeriveSeed, PureAndWellSpread) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t root : {1ull, 2ull, 999ull}) {
    for (std::uint64_t i = 0; i < 100; ++i) seen.insert(derive_seed(root, i));
  }
  EXPECT_EQ(seen.size(), 300u);  // no collisions across roots or indices
}

TEST(SweepRunner, GridExpansion) {
  SweepConfig cfg = tiny_sweep(1, 3);
  cfg.tick_freqs_hz = {100.0, 250.0};
  const SweepRunner runner(cfg);
  // 2 variants x 2 modes x 2 freqs
  EXPECT_EQ(runner.cell_count(), 8u);
  EXPECT_EQ(runner.total_runs(), 24u);
}

TEST(SweepRunner, ParallelMatchesSerialBitExactly) {
  // The determinism contract: per-run seeds depend only on (root_seed, run
  // index) and aggregation happens in run-index order, so any -j value
  // produces bit-identical metrics.
  const SweepResult serial = SweepRunner(tiny_sweep(1)).run();
  const SweepResult parallel = SweepRunner(tiny_sweep(4)).run();

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());

  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    EXPECT_EQ(serial.runs[i].seed, parallel.runs[i].seed);
    EXPECT_EQ(serial.runs[i].cell, parallel.runs[i].cell);
    EXPECT_EQ(serial.runs[i].result.exits_total, parallel.runs[i].result.exits_total);
    EXPECT_EQ(serial.runs[i].result.exits_timer_related,
              parallel.runs[i].result.exits_timer_related);
    EXPECT_EQ(serial.runs[i].result.events_executed,
              parallel.runs[i].result.events_executed);
    EXPECT_EQ(serial.runs[i].result.busy_cycles().count(),
              parallel.runs[i].result.busy_cycles().count());
  }
  for (std::size_t c = 0; c < serial.cells.size(); ++c) {
    const auto& a = serial.cells[c];
    const auto& b = parallel.cells[c];
    EXPECT_EQ(a.key.label(), b.key.label());
    EXPECT_EQ(a.exits_total.count(), b.exits_total.count());
    // Bit-identical, not just close: EXPECT_EQ on doubles is deliberate.
    EXPECT_EQ(a.exits_total.mean(), b.exits_total.mean());
    EXPECT_EQ(a.exits_timer.mean(), b.exits_timer.mean());
    EXPECT_EQ(a.busy_cycles.mean(), b.busy_cycles.mean());
    EXPECT_EQ(a.busy_cycles.stddev(), b.busy_cycles.stddev());
    EXPECT_EQ(a.wakeup_latency_us.count(), b.wakeup_latency_us.count());
    EXPECT_EQ(a.wakeup_latency_us.mean(), b.wakeup_latency_us.mean());
  }
  // And the exported artifacts match byte for byte.
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
}

TEST(SweepRunner, ReplicasUseDistinctSeeds) {
  const SweepResult res = SweepRunner(tiny_sweep(2, 3)).run();
  std::set<std::uint64_t> seeds;
  for (const auto& run : res.runs) seeds.insert(run.seed);
  EXPECT_EQ(seeds.size(), res.runs.size());
  for (const auto& cell : res.cells) {
    EXPECT_EQ(cell.exits_total.count(), 3u);
  }
}

TEST(SweepRunner, OvercommitAxisResizesMachine) {
  SweepConfig cfg = tiny_sweep(2, 1);
  cfg.base.vcpus = 4;
  cfg.modes = {guest::TickMode::kParatick};
  cfg.variants.clear();
  cfg.overcommit = {1.0, 2.0};
  const SweepResult res = SweepRunner(cfg).run();
  ASSERT_EQ(res.cells.size(), 2u);
  EXPECT_DOUBLE_EQ(res.cells[0].key.overcommit, 1.0);  // 4 vCPUs on 4 pCPUs
  EXPECT_DOUBLE_EQ(res.cells[1].key.overcommit, 2.0);  // 4 vCPUs on 2 pCPUs
  // More overcommit cannot reduce total exits for the same guest load.
  EXPECT_GT(res.cells[1].first.wall.nanoseconds(), 0);
}

TEST(SweepRunner, CompareFindsCells) {
  const SweepResult res = SweepRunner(tiny_sweep(2, 1)).run();
  ASSERT_NE(res.find("storm", guest::TickMode::kParatick), nullptr);
  EXPECT_EQ(res.find("nope", guest::TickMode::kParatick), nullptr);
  const metrics::Comparison c = res.compare("storm", guest::TickMode::kDynticksIdle,
                                            guest::TickMode::kParatick);
  // Paratick never induces more timer exits than dynticks (§4.2).
  EXPECT_LE(c.timer_exit_delta_pct, 0.0);
}

TEST(SweepRunner, CsvAndJsonCoverEveryCell) {
  const SweepResult res = SweepRunner(tiny_sweep(2, 1)).run();
  const std::string csv = res.to_csv();
  const std::string json = res.to_json();
  for (const auto& cell : res.cells) {
    EXPECT_NE(csv.find(cell.key.variant), std::string::npos);
    EXPECT_NE(json.find(cell.key.variant), std::string::npos);
  }
  // Header + one line per cell.
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n')),
            res.cells.size() + 1);
}

// Minimal RFC 4180 reader used to round-trip to_csv(): splits one record,
// honoring quoted fields with doubled quotes.
std::vector<std::string> parse_csv_record(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

TEST(SweepResult, CsvEscapingRoundTripsHostileVariantNames) {
  // Variant names come from user code: device model strings, benchmark
  // labels, anything. Commas, quotes and newlines must survive to_csv().
  const std::vector<std::string> names = {
      "plain", "with,comma", "with \"quotes\"", "comma, \"and\" quotes",
      "trailing space ", "with\nnewline"};
  SweepResult res;
  for (const auto& name : names) {
    SweepCellSummary cell;
    cell.key.variant = name;
    cell.key.mode = guest::TickMode::kParatick;
    cell.key.tick_freq_hz = 250.0;
    cell.key.vcpus = 1;
    cell.exits_total.add(10.0);
    res.cells.push_back(std::move(cell));
  }

  const std::string csv = res.to_csv();
  // Split into physical records: a '\n' inside quotes is data, not a
  // record separator.
  std::vector<std::string> records;
  std::string cur;
  bool quoted = false;
  for (const char c : csv) {
    if (c == '"') quoted = !quoted;
    if (c == '\n' && !quoted) {
      records.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  EXPECT_TRUE(cur.empty());  // file ends in a newline outside quotes
  ASSERT_EQ(records.size(), names.size() + 1);  // header + one per cell

  const std::size_t columns = parse_csv_record(records[0]).size();
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::vector<std::string> fields = parse_csv_record(records[i + 1]);
    ASSERT_EQ(fields.size(), columns) << records[i + 1];
    EXPECT_EQ(fields[0], names[i]);  // exact round-trip, escapes undone
    EXPECT_EQ(fields[1], "paratick");
  }
}

TEST(SweepCli, ParsesHistoryFlags) {
  const char* argv[] = {"bench", "--history-dir", "results/history",
                        "--history-tag", "abc123"};
  const SweepCli cli = SweepCli::parse(static_cast<int>(std::size(argv)),
                                       const_cast<char**>(argv));
  EXPECT_EQ(cli.history_dir, "results/history");
  EXPECT_EQ(cli.history_tag, "abc123");
  EXPECT_TRUE(cli.positional.empty());
}

TEST(SweepCli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"bench", "-j4",     "--repeat", "3",  "--seed",
                        "99",    "--quiet", "--csv",    "small"};
  const SweepCli cli = SweepCli::parse(static_cast<int>(std::size(argv)),
                                       const_cast<char**>(argv));
  EXPECT_EQ(cli.threads, 4u);
  EXPECT_EQ(cli.repeat, 3);
  ASSERT_TRUE(cli.root_seed.has_value());
  EXPECT_EQ(*cli.root_seed, 99u);
  EXPECT_FALSE(cli.progress);
  EXPECT_TRUE(cli.csv);
  ASSERT_EQ(cli.positional.size(), 1u);
  EXPECT_EQ(cli.positional[0], "small");

  SweepConfig cfg;
  cli.apply(cfg);
  EXPECT_EQ(cfg.threads, 4u);
  EXPECT_EQ(cfg.repeat, 3);
  EXPECT_EQ(cfg.root_seed, 99u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for_index(hits.size(), 4,
                     [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, PropagatesJobExceptions) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

}  // namespace
}  // namespace paratick::core
