// Whole-system integration tests: conservation laws, determinism,
// multi-VM isolation, experiment helpers.
#include <gtest/gtest.h>

#include "expect_error.hpp"

#include "core/experiment.hpp"
#include "core/system.hpp"
#include "workload/micro.hpp"
#include "workload/parsec.hpp"

namespace paratick::core {
namespace {

using sim::SimTime;

ExperimentSpec small_parsec(const char* name, int vcpus) {
  ExperimentSpec exp;
  exp.machine = hw::MachineSpec::small(static_cast<std::uint32_t>(vcpus));
  exp.vcpus = vcpus;
  exp.attach_disk = true;
  const auto& profile = workload::parsec_profile(name);
  exp.setup = [&profile, vcpus](guest::GuestKernel& k) {
    workload::install_parsec(k, profile, vcpus);
  };
  return exp;
}

TEST(System, CycleConservationBusyPlusIdleEqualsWall) {
  const auto r = run_mode(small_parsec("canneal", 2), guest::TickMode::kDynticksIdle);
  const auto wall_cycles =
      2 * sim::CpuFrequency{2.0}.cycles_in(r.wall).count();  // 2 CPUs
  const auto accounted = r.cycles.grand_total().count();
  EXPECT_NEAR(static_cast<double>(accounted), static_cast<double>(wall_cycles),
              static_cast<double>(wall_cycles) * 0.001);
}

TEST(System, DeterministicForFixedSeeds) {
  const auto a = run_mode(small_parsec("fluidanimate", 2), guest::TickMode::kParatick);
  const auto b = run_mode(small_parsec("fluidanimate", 2), guest::TickMode::kParatick);
  EXPECT_EQ(a.exits_total, b.exits_total);
  EXPECT_EQ(a.busy_cycles().count(), b.busy_cycles().count());
  EXPECT_EQ(a.completion_time(), b.completion_time());
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(System, SeedChangesPerturbButDoNotBreak) {
  auto exp = small_parsec("canneal", 2);
  const auto a = run_mode(exp, guest::TickMode::kDynticksIdle);
  exp.guest_seed = 999;
  const auto b = run_mode(exp, guest::TickMode::kDynticksIdle);
  EXPECT_NE(a.events_executed, b.events_executed);
  ASSERT_TRUE(a.completion_time() && b.completion_time());
  // Same workload scale: completion within a few percent.
  EXPECT_NEAR(b.completion_time()->seconds() / a.completion_time()->seconds(), 1.0,
              0.05);
}

TEST(System, StopWhenDoneHaltsAtCompletion) {
  auto exp = small_parsec("swaptions", 1);
  exp.max_duration = SimTime::sec(30);
  const auto r = run_mode(exp, guest::TickMode::kDynticksIdle);
  ASSERT_TRUE(r.completion_time().has_value());
  EXPECT_EQ(r.wall, *r.completion_time());
  EXPECT_LT(r.wall, SimTime::sec(2));
}

TEST(System, DurationBoundedWhenNoTasks) {
  SystemSpec spec;
  spec.machine = hw::MachineSpec::small(1);
  spec.max_duration = SimTime::ms(50);
  VmSpec vm;  // idle VM: no workload
  vm.vcpus = 1;
  spec.vms.push_back(std::move(vm));
  System system(std::move(spec));
  const auto r = system.run();
  EXPECT_EQ(r.wall, SimTime::ms(50));
  EXPECT_FALSE(r.completion_time().has_value());
}

TEST(System, IdleTicklessVmProducesAlmostNoExits) {
  SystemSpec spec;
  spec.machine = hw::MachineSpec::small(4);
  spec.max_duration = SimTime::sec(2);
  VmSpec vm;
  vm.vcpus = 4;
  vm.guest.tick_mode = guest::TickMode::kDynticksIdle;
  spec.vms.push_back(std::move(vm));
  System system(std::move(spec));
  const auto r = system.run();
  // Boot (arm + a tick or two + idle stop) per vCPU, then silence.
  EXPECT_LT(r.exits_total, 40u);
}

TEST(System, IdlePeriodicVmTicksForever) {
  SystemSpec spec;
  spec.machine = hw::MachineSpec::small(2);
  spec.max_duration = SimTime::sec(1);
  VmSpec vm;
  vm.vcpus = 2;
  vm.guest.tick_mode = guest::TickMode::kPeriodic;
  spec.vms.push_back(std::move(vm));
  System system(std::move(spec));
  const auto r = system.run();
  // 2 vCPUs x 250 ticks/s x (1 arm exit + 1 hlt exit) = ~1000 exits.
  EXPECT_NEAR(static_cast<double>(r.exits_total), 1000.0, 60.0);
}

TEST(System, MultipleVmsTrackedSeparately) {
  SystemSpec spec;
  spec.machine = hw::MachineSpec::small(2);
  spec.max_duration = SimTime::sec(10);
  for (int i = 0; i < 2; ++i) {
    VmSpec vm;
    vm.vcpus = 1;
    vm.guest.seed = 10 + static_cast<std::uint64_t>(i);
    vm.setup = [i](guest::GuestKernel& k) {
      workload::PureComputeSpec pc;
      pc.total_cycles = (i + 1) * 10'000'000;
      workload::install_pure_compute(k, pc);
    };
    spec.vms.push_back(std::move(vm));
  }
  System system(std::move(spec));
  const auto r = system.run();
  ASSERT_EQ(r.vms.size(), 2u);
  ASSERT_TRUE(r.vms[0].completion_time && r.vms[1].completion_time);
  EXPECT_LT(*r.vms[0].completion_time, *r.vms[1].completion_time);
  EXPECT_GT(r.vms[1].exits_total, 0u);
}

TEST(System, RunTwiceIsRejected) {
  SystemSpec spec;
  spec.machine = hw::MachineSpec::small(1);
  spec.max_duration = SimTime::ms(1);
  VmSpec vm;
  vm.vcpus = 1;
  spec.vms.push_back(std::move(vm));
  System system(std::move(spec));
  system.run();
  EXPECT_SIM_ERROR(system.run(), "once");
}

TEST(Experiment, MakeSystemSpecAppliesMode) {
  auto exp = small_parsec("dedup", 4);
  const SystemSpec spec = make_system_spec(exp, guest::TickMode::kParatick);
  ASSERT_EQ(spec.vms.size(), 1u);
  EXPECT_EQ(spec.vms[0].guest.tick_mode, guest::TickMode::kParatick);
  EXPECT_EQ(spec.vms[0].vcpus, 4);
  EXPECT_TRUE(spec.vms[0].attach_disk);
}

TEST(Experiment, AbComparisonHasBothRuns) {
  const AbResult ab = run_paratick_vs_dynticks(small_parsec("streamcluster", 2));
  EXPECT_GT(ab.baseline.exits_total, ab.treatment.exits_total);
  EXPECT_LT(ab.comparison.exit_delta_pct, 0.0);
}

TEST(SystemDeath, NeedsAtLeastOneVm) {
  SystemSpec spec;
  spec.machine = hw::MachineSpec::small(1);
  EXPECT_SIM_ERROR(System{std::move(spec)}, "at least one VM");
}

}  // namespace
}  // namespace paratick::core
