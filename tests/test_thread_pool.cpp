// core::ThreadPool error semantics: wait_idle()'s contract — first error
// wins, the other jobs still run to completion, and the pool stays usable
// after the rethrow — is what the parallel engine's barrier and the sweep
// backends lean on, so it gets pinned here.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"

namespace paratick::core {
namespace {

TEST(ThreadPool, RunsSubmittedJobs) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { ran.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitIdleWithNoJobsReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang or throw
  SUCCEED();
}

TEST(ThreadPool, WaitIdleRethrowsAJobError) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("job failed"); });
  bool caught = false;
  try {
    pool.wait_idle();
  } catch (const std::runtime_error& e) {
    caught = true;
    EXPECT_STREQ(e.what(), "job failed");
  }
  EXPECT_TRUE(caught);
}

TEST(ThreadPool, FirstOfSeveralErrorsWinsAndAllJobsStillRun) {
  ThreadPool pool(1);  // single worker: job order IS completion order
  std::atomic<int> ran{0};
  pool.submit([&] {
    ran.fetch_add(1);
    throw std::runtime_error("first");
  });
  pool.submit([&] {
    ran.fetch_add(1);
    throw std::runtime_error("second");
  });
  pool.submit([&] { ran.fetch_add(1); });  // plain job after the failures

  bool caught = false;
  try {
    pool.wait_idle();
  } catch (const std::runtime_error& e) {
    caught = true;
    // The FIRST error is kept; later ones are dropped, not queued.
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_TRUE(caught);
  // A failing job never takes the rest of the queue down.
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, PoolIsReusableAfterRethrow) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("poisoned"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);

  // The error slot was consumed by the rethrow: the next batch runs clean
  // and a second wait_idle() must NOT replay the old exception.
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] { ran.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ParallelForIndexCoversEveryIndexOnce) {
  for (const unsigned threads : {1u, 4u}) {
    std::vector<std::atomic<int>> hits(64);
    parallel_for_index(hits.size(), threads,
                       [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " @" << threads;
    }
  }
}

TEST(ThreadPool, JobsRunConcurrently) {
  // Two jobs that each wait for the other: only completes if the pool
  // really runs them on distinct threads.
  ThreadPool pool(2);
  std::atomic<int> arrived{0};
  for (int i = 0; i < 2; ++i) {
    pool.submit([&] {
      arrived.fetch_add(1);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (arrived.load() < 2) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "jobs never overlapped";
        std::this_thread::yield();
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(arrived.load(), 2);
}

}  // namespace
}  // namespace paratick::core
