// Unit tests of the three scheduler-tick policies against the paper's
// Figures 1 (tickless) and 3 (paratick), using a synchronous mock CPU.
#include <gtest/gtest.h>

#include "guest/tick_policies.hpp"
#include "mock_tick_cpu.hpp"

namespace paratick::guest {
namespace {

using sim::SimTime;
using testing::MockTickCpu;

int done_calls;
std::function<void()> count_done() {
  return [] { ++done_calls; };
}

class TickPolicyTest : public ::testing::Test {
 protected:
  void SetUp() override { done_calls = 0; }
  MockTickCpu cpu;
};

// ---------------------------------------------------------------------------
// Periodic (§2/§3.1)
// ---------------------------------------------------------------------------

using PeriodicTest = TickPolicyTest;

TEST_F(PeriodicTest, BootArmsOnePeriodOut) {
  auto p = make_tick_policy(TickMode::kPeriodic, cpu);
  p->on_boot(count_done());
  ASSERT_EQ(cpu.msr_writes.size(), 1u);
  EXPECT_EQ(cpu.msr_writes[0].deadline, SimTime::ms(4));
  EXPECT_EQ(done_calls, 1);
}

TEST_F(PeriodicTest, EveryTickRearmsOnTheGrid) {
  auto p = make_tick_policy(TickMode::kPeriodic, cpu);
  p->on_boot(count_done());
  for (int i = 1; i <= 5; ++i) {
    cpu.clock = SimTime::ms(4 * i);
    p->on_physical_tick(count_done());
    EXPECT_EQ(cpu.msr_writes.back().deadline, SimTime::ms(4 * (i + 1)));
  }
  EXPECT_EQ(p->stats().ticks_handled, 5u);
  EXPECT_EQ(p->stats().msr_writes, 6u);  // boot + 5 rearms
  EXPECT_EQ(cpu.tick_work_calls, 5);
}

TEST_F(PeriodicTest, CatchesUpAfterProcessingDelay) {
  auto p = make_tick_policy(TickMode::kPeriodic, cpu);
  p->on_boot(count_done());
  cpu.clock = SimTime::ms(13);  // three periods slipped by
  p->on_physical_tick(count_done());
  EXPECT_EQ(cpu.msr_writes.back().deadline, SimTime::ms(16));  // next grid point
}

TEST_F(PeriodicTest, IdleTransitionsAreFree) {
  auto p = make_tick_policy(TickMode::kPeriodic, cpu);
  p->on_boot(count_done());
  const auto writes = cpu.msr_writes.size();
  p->on_idle_enter(count_done());
  p->on_idle_exit(count_done());
  EXPECT_EQ(cpu.msr_writes.size(), writes);  // the tick just keeps running
  EXPECT_EQ(done_calls, 3);
}

TEST_F(PeriodicTest, IgnoresVirtualTicks) {
  auto p = make_tick_policy(TickMode::kPeriodic, cpu);
  p->on_virtual_tick(count_done());
  EXPECT_EQ(cpu.tick_work_calls, 0);
  EXPECT_EQ(done_calls, 1);
}

// ---------------------------------------------------------------------------
// Dynticks idle (Figure 1)
// ---------------------------------------------------------------------------

using DynticksTest = TickPolicyTest;

TEST_F(DynticksTest, Fig1a_TickWorkThenRearmWhileRunning) {
  auto p = make_tick_policy(TickMode::kDynticksIdle, cpu);
  p->on_boot(count_done());
  cpu.clock = SimTime::ms(4);
  p->on_physical_tick(count_done());
  EXPECT_EQ(cpu.tick_work_calls, 1);
  EXPECT_EQ(cpu.msr_writes.back().deadline, SimTime::ms(8));
}

TEST_F(DynticksTest, Fig1b_TickNeededKeepsTickWithoutMsrWrite) {
  auto p = make_tick_policy(TickMode::kDynticksIdle, cpu);
  p->on_boot(count_done());
  const auto writes = cpu.msr_writes.size();
  cpu.snapshot.tick_needed = true;  // RCU / softirq pending
  p->on_idle_enter(count_done());
  EXPECT_EQ(cpu.msr_writes.size(), writes);
  auto* d = dynamic_cast<DynticksPolicy*>(p.get());
  ASSERT_NE(d, nullptr);
  EXPECT_FALSE(d->tick_stopped());
}

TEST_F(DynticksTest, Fig1b_NearEventKeepsTickButArmsEarlierHrtimer) {
  auto p = make_tick_policy(TickMode::kDynticksIdle, cpu);
  p->on_boot(count_done());
  const auto writes = cpu.msr_writes.size();
  cpu.snapshot.next_event = SimTime::ms(2);  // within one tick period
  p->on_idle_enter(count_done());
  // The tick survives (no stop), but high-res mode hands the hardware the
  // earlier hrtimer — otherwise the 2 ms event would wait for the 4 ms
  // grid point.
  EXPECT_EQ(cpu.msr_writes.size(), writes + 1);
  EXPECT_EQ(cpu.msr_writes.back().deadline, SimTime::ms(2));
  auto* d = dynamic_cast<DynticksPolicy*>(p.get());
  ASSERT_NE(d, nullptr);
  EXPECT_FALSE(d->tick_stopped());
}

TEST_F(DynticksTest, Fig1b_NearEventAlreadyCoveredSkipsMsrWrite) {
  auto p = make_tick_policy(TickMode::kDynticksIdle, cpu);
  p->on_boot(count_done());  // tick armed at 4 ms
  const auto writes = cpu.msr_writes.size();
  cpu.snapshot.next_event = SimTime::ms(4);  // the armed tick covers it
  p->on_idle_enter(count_done());
  EXPECT_EQ(cpu.msr_writes.size(), writes);
}

TEST_F(DynticksTest, Fig1b_FarEventDefersTimerToIt) {
  auto p = make_tick_policy(TickMode::kDynticksIdle, cpu);
  p->on_boot(count_done());
  cpu.snapshot.next_event = SimTime::ms(40);
  p->on_idle_enter(count_done());
  EXPECT_EQ(cpu.msr_writes.back().deadline, SimTime::ms(40));
  auto* d = dynamic_cast<DynticksPolicy*>(p.get());
  EXPECT_TRUE(d->tick_stopped());
}

TEST_F(DynticksTest, Fig1b_NoEventDisablesTimerEntirely) {
  auto p = make_tick_policy(TickMode::kDynticksIdle, cpu);
  p->on_boot(count_done());
  p->on_idle_enter(count_done());
  EXPECT_FALSE(cpu.msr_writes.back().deadline.has_value());  // disarm
}

TEST_F(DynticksTest, Fig1c_IdleExitRestartsStoppedTick) {
  auto p = make_tick_policy(TickMode::kDynticksIdle, cpu);
  p->on_boot(count_done());
  p->on_idle_enter(count_done());  // stops the tick
  cpu.clock = SimTime::ms(10);
  p->on_idle_exit(count_done());
  EXPECT_EQ(cpu.msr_writes.back().deadline, SimTime::ms(14));
  auto* d = dynamic_cast<DynticksPolicy*>(p.get());
  EXPECT_FALSE(d->tick_stopped());
}

TEST_F(DynticksTest, Fig1c_IdleExitFreeWhenTickNotStopped) {
  auto p = make_tick_policy(TickMode::kDynticksIdle, cpu);
  p->on_boot(count_done());
  cpu.snapshot.tick_needed = true;
  p->on_idle_enter(count_done());
  const auto writes = cpu.msr_writes.size();
  p->on_idle_exit(count_done());
  EXPECT_EQ(cpu.msr_writes.size(), writes);
}

TEST_F(DynticksTest, Fig1a_StoppedTickDoesNotRearm) {
  auto p = make_tick_policy(TickMode::kDynticksIdle, cpu);
  p->on_boot(count_done());
  cpu.snapshot.next_event = SimTime::ms(40);
  p->on_idle_enter(count_done());  // defers to 40 ms
  const auto writes = cpu.msr_writes.size();
  cpu.clock = SimTime::ms(40);
  p->on_physical_tick(count_done());  // the deferred wake-up
  EXPECT_EQ(cpu.tick_work_calls, 1);
  EXPECT_EQ(cpu.msr_writes.size(), writes);  // Figure 1a: skip the re-arm
}

TEST_F(DynticksTest, RepeatedIdleEntrySkipsRedundantWrite) {
  auto p = make_tick_policy(TickMode::kDynticksIdle, cpu);
  p->on_boot(count_done());
  p->on_idle_enter(count_done());  // disarm (nullopt)
  const auto writes = cpu.msr_writes.size();
  // Woken by an interrupt that did not restart the tick (still idle), then
  // idle again with an unchanged (empty) timer list:
  p->on_idle_enter(count_done());
  EXPECT_EQ(cpu.msr_writes.size(), writes);
  EXPECT_EQ(p->stats().msr_writes_avoided, 1u);
}

TEST_F(DynticksTest, TwoExitsPerIdleTransition) {
  // The §3.2 cost: one MSR write on idle entry, one on idle exit.
  auto p = make_tick_policy(TickMode::kDynticksIdle, cpu);
  p->on_boot(count_done());
  const auto base = p->stats().msr_writes;
  for (int i = 0; i < 10; ++i) {
    p->on_idle_enter(count_done());
    cpu.clock += SimTime::us(50);
    p->on_idle_exit(count_done());
  }
  EXPECT_EQ(p->stats().msr_writes - base, 20u);
}

// ---------------------------------------------------------------------------
// Full dynticks (NO_HZ_FULL) — the §2 mode the paper excludes; implemented
// as an extension.
// ---------------------------------------------------------------------------

using FullDynticksTest = TickPolicyTest;

TEST_F(FullDynticksTest, SingleTaskStopsTickWhileBusy) {
  auto p = make_tick_policy(TickMode::kFullDynticks, cpu);
  p->on_boot(count_done());
  cpu.running = 1;
  cpu.idle = false;
  cpu.clock = SimTime::ms(4);
  p->on_physical_tick(count_done());
  // Deferred to the 1 s housekeeping horizon instead of the next period.
  ASSERT_TRUE(cpu.msr_writes.back().deadline.has_value());
  EXPECT_EQ(*cpu.msr_writes.back().deadline,
            SimTime::ms(4) + FullDynticksPolicy::kHousekeepingPeriod);
  EXPECT_EQ(p->stats().busy_stops, 1u);
}

TEST_F(FullDynticksTest, MultipleTasksKeepPeriodicTick) {
  auto p = make_tick_policy(TickMode::kFullDynticks, cpu);
  p->on_boot(count_done());
  cpu.running = 2;  // contended CPU: the tick must keep time-slicing
  cpu.clock = SimTime::ms(4);
  p->on_physical_tick(count_done());
  EXPECT_EQ(cpu.msr_writes.back().deadline, SimTime::ms(8));
  EXPECT_EQ(p->stats().busy_stops, 0u);
}

TEST_F(FullDynticksTest, RcuPendingKeepsTickEvenWithOneTask) {
  auto p = make_tick_policy(TickMode::kFullDynticks, cpu);
  p->on_boot(count_done());
  cpu.running = 1;
  cpu.snapshot.tick_needed = true;
  cpu.clock = SimTime::ms(4);
  p->on_physical_tick(count_done());
  EXPECT_EQ(cpu.msr_writes.back().deadline, SimTime::ms(8));
}

TEST_F(FullDynticksTest, PendingEventBoundsTheDeferral) {
  auto p = make_tick_policy(TickMode::kFullDynticks, cpu);
  p->on_boot(count_done());
  cpu.running = 1;
  cpu.snapshot.next_event = SimTime::ms(20);
  cpu.clock = SimTime::ms(4);
  p->on_physical_tick(count_done());
  EXPECT_EQ(cpu.msr_writes.back().deadline, SimTime::ms(20));
}

TEST_F(FullDynticksTest, IdleExitWithSingleTaskStaysAdaptive) {
  auto p = make_tick_policy(TickMode::kFullDynticks, cpu);
  p->on_boot(count_done());
  p->on_idle_enter(count_done());  // stop (no events)
  cpu.clock = SimTime::ms(10);
  cpu.running = 1;
  p->on_idle_exit(count_done());
  ASSERT_TRUE(cpu.msr_writes.back().deadline.has_value());
  EXPECT_EQ(*cpu.msr_writes.back().deadline,
            SimTime::ms(10) + FullDynticksPolicy::kHousekeepingPeriod);
}

TEST_F(FullDynticksTest, StillPaysMsrWritePerAdaptiveDecision) {
  // The §2 point: full dynticks reduces tick *interrupts* but every
  // adaptive decision is still an MSR write — a VM exit in a guest.
  auto p = make_tick_policy(TickMode::kFullDynticks, cpu);
  p->on_boot(count_done());
  const auto base = p->stats().msr_writes;
  cpu.running = 1;
  for (int i = 0; i < 10; ++i) {
    p->on_idle_enter(count_done());
    cpu.clock += SimTime::us(100);
    p->on_idle_exit(count_done());
  }
  EXPECT_GE(p->stats().msr_writes - base, 10u);
}

// ---------------------------------------------------------------------------
// Paratick (Figures 2/3, §5.2)
// ---------------------------------------------------------------------------

using ParatickTest = TickPolicyTest;

TEST_F(ParatickTest, BootDeclaresFrequencyInsteadOfArming) {
  auto p = make_tick_policy(TickMode::kParatick, cpu);
  p->on_boot(count_done());
  EXPECT_EQ(cpu.hypercalls, 1);
  EXPECT_EQ(cpu.declared_period, SimTime::ms(4));
  EXPECT_TRUE(cpu.msr_writes.empty());
}

TEST_F(ParatickTest, Fig3a_VirtualTickNeverArms) {
  auto p = make_tick_policy(TickMode::kParatick, cpu);
  p->on_boot(count_done());
  for (int i = 0; i < 20; ++i) {
    cpu.clock += SimTime::ms(4);
    p->on_virtual_tick(count_done());
  }
  EXPECT_EQ(cpu.tick_work_calls, 20);
  EXPECT_TRUE(cpu.msr_writes.empty());
  EXPECT_EQ(p->stats().virtual_ticks, 20u);
}

TEST_F(ParatickTest, Fig3b_PhysicalTickWhileIdleActsAsVirtualTick) {
  auto p = make_tick_policy(TickMode::kParatick, cpu);
  p->on_boot(count_done());
  cpu.idle = true;
  p->on_physical_tick(count_done());
  EXPECT_EQ(cpu.tick_work_calls, 1);
  EXPECT_TRUE(cpu.msr_writes.empty());  // never re-armed
}

TEST_F(ParatickTest, Fig3b_PhysicalTickWhileBusyDoesNothing) {
  auto p = make_tick_policy(TickMode::kParatick, cpu);
  p->on_boot(count_done());
  cpu.idle = false;
  p->on_physical_tick(count_done());
  EXPECT_EQ(cpu.tick_work_calls, 0);  // virtual ticks are flowing
  EXPECT_EQ(done_calls, 2);
}

TEST_F(ParatickTest, Fig3c_NothingScheduledMeansNoTimer) {
  auto p = make_tick_policy(TickMode::kParatick, cpu);
  p->on_boot(count_done());
  p->on_idle_enter(count_done());
  EXPECT_TRUE(cpu.msr_writes.empty());
}

TEST_F(ParatickTest, Fig3c_TickNeededArmsOnePeriodOut) {
  auto p = make_tick_policy(TickMode::kParatick, cpu);
  p->on_boot(count_done());
  cpu.snapshot.tick_needed = true;
  p->on_idle_enter(count_done());
  ASSERT_EQ(cpu.msr_writes.size(), 1u);
  EXPECT_EQ(cpu.msr_writes[0].deadline, SimTime::ms(4));
}

TEST_F(ParatickTest, Fig3c_NextEventArmsAtEvent) {
  auto p = make_tick_policy(TickMode::kParatick, cpu);
  p->on_boot(count_done());
  cpu.snapshot.next_event = SimTime::ms(25);
  p->on_idle_enter(count_done());
  EXPECT_EQ(cpu.msr_writes.back().deadline, SimTime::ms(25));
}

TEST_F(ParatickTest, Fig3d_IdleExitNeverTouchesTimer) {
  auto p = make_tick_policy(TickMode::kParatick, cpu);
  p->on_boot(count_done());
  cpu.snapshot.tick_needed = true;
  p->on_idle_enter(count_done());
  const auto writes = cpu.msr_writes.size();
  for (int i = 0; i < 5; ++i) p->on_idle_exit(count_done());
  EXPECT_EQ(cpu.msr_writes.size(), writes);
}

TEST_F(ParatickTest, NeverDisarmHeuristicReusesEarlierDeadline) {
  // §5.2.4: "only if the timer is not running or the newly determined
  // expiry time is sooner than the timer's, it is (re)programmed."
  auto p = make_tick_policy(TickMode::kParatick, cpu);
  p->on_boot(count_done());
  cpu.snapshot.next_event = SimTime::ms(10);
  p->on_idle_enter(count_done());  // arms at 10 ms
  ASSERT_EQ(cpu.msr_writes.size(), 1u);

  p->on_idle_exit(count_done());
  cpu.clock = SimTime::ms(2);
  cpu.snapshot.next_event = SimTime::ms(12);  // later than the armed 10 ms
  p->on_idle_enter(count_done());
  EXPECT_EQ(cpu.msr_writes.size(), 1u);  // no exit: the armed timer suffices
  EXPECT_EQ(p->stats().msr_writes_avoided, 1u);
}

TEST_F(ParatickTest, EarlierDeadlineDoesReprogram) {
  auto p = make_tick_policy(TickMode::kParatick, cpu);
  p->on_boot(count_done());
  cpu.snapshot.next_event = SimTime::ms(10);
  p->on_idle_enter(count_done());
  p->on_idle_exit(count_done());
  cpu.snapshot.next_event = SimTime::ms(6);  // sooner: must reprogram
  p->on_idle_enter(count_done());
  ASSERT_EQ(cpu.msr_writes.size(), 2u);
  EXPECT_EQ(cpu.msr_writes[1].deadline, SimTime::ms(6));
}

TEST_F(ParatickTest, FiredTimerIsNotReusable) {
  auto p = make_tick_policy(TickMode::kParatick, cpu);
  p->on_boot(count_done());
  cpu.snapshot.next_event = SimTime::ms(10);
  p->on_idle_enter(count_done());  // arms at 10 ms
  cpu.clock = SimTime::ms(10);
  cpu.idle = true;
  p->on_physical_tick(count_done());  // fires: the record must be consumed
  cpu.clock = SimTime::ms(11);
  cpu.snapshot.next_event = SimTime::ms(20);
  p->on_idle_enter(count_done());
  EXPECT_EQ(cpu.msr_writes.back().deadline, SimTime::ms(20));  // re-armed
}

TEST_F(ParatickTest, StaleArmedDeadlineIsNotReused) {
  auto p = make_tick_policy(TickMode::kParatick, cpu);
  p->on_boot(count_done());
  cpu.snapshot.next_event = SimTime::ms(10);
  p->on_idle_enter(count_done());
  // Time passes beyond the armed deadline without the policy seeing the
  // fire (e.g. delivered as a virtual tick); the record is stale.
  cpu.clock = SimTime::ms(15);
  cpu.snapshot.next_event = SimTime::ms(30);
  p->on_idle_enter(count_done());
  EXPECT_EQ(cpu.msr_writes.back().deadline, SimTime::ms(30));
}

TEST_F(ParatickTest, StatsCountIdleTransitions) {
  auto p = make_tick_policy(TickMode::kParatick, cpu);
  p->on_boot(count_done());
  for (int i = 0; i < 7; ++i) {
    p->on_idle_enter(count_done());
    p->on_idle_exit(count_done());
  }
  EXPECT_EQ(p->stats().idle_entries, 7u);
  EXPECT_EQ(p->stats().idle_exits, 7u);
}

// ---------------------------------------------------------------------------
// Cross-policy properties
// ---------------------------------------------------------------------------

class AllPolicies : public ::testing::TestWithParam<TickMode> {};

TEST_P(AllPolicies, EveryCallbackInvokesDoneExactlyOnce) {
  MockTickCpu cpu;
  done_calls = 0;
  auto p = make_tick_policy(GetParam(), cpu);
  p->on_boot(count_done());
  cpu.clock += SimTime::ms(4);
  p->on_physical_tick(count_done());
  p->on_virtual_tick(count_done());
  p->on_idle_enter(count_done());
  p->on_idle_exit(count_done());
  EXPECT_EQ(done_calls, 5);
}

TEST_P(AllPolicies, NameMatchesMode) {
  MockTickCpu cpu;
  auto p = make_tick_policy(GetParam(), cpu);
  EXPECT_EQ(p->mode(), GetParam());
  EXPECT_EQ(p->name(), to_string(GetParam()));
}

TEST_P(AllPolicies, IdleCycleMsrWritesOrdered) {
  // Over many idle transitions with no pending events:
  //   periodic: 0 writes, paratick: 0 writes, dynticks: 2 per transition.
  MockTickCpu cpu;
  done_calls = 0;
  auto p = make_tick_policy(GetParam(), cpu);
  p->on_boot(count_done());
  const auto base = p->stats().msr_writes;
  for (int i = 0; i < 50; ++i) {
    p->on_idle_enter(count_done());
    cpu.clock += SimTime::us(40);
    p->on_idle_exit(count_done());
  }
  const auto writes = p->stats().msr_writes - base;
  switch (GetParam()) {
    case TickMode::kDynticksIdle:
      EXPECT_EQ(writes, 100u);
      break;
    case TickMode::kFullDynticks:
      EXPECT_GE(writes, 50u);  // adaptive decisions still cost writes
      break;
    case TickMode::kPeriodic:
    case TickMode::kParatick:
      EXPECT_EQ(writes, 0u);
      break;
  }
}

TEST_P(AllPolicies, TickIntervalsAreObserved) {
  MockTickCpu cpu;
  done_calls = 0;
  auto p = make_tick_policy(GetParam(), cpu);
  p->on_boot(count_done());
  cpu.idle = GetParam() == TickMode::kParatick;  // fig 3b only ticks when idle
  for (int i = 1; i <= 6; ++i) {
    cpu.clock = SimTime::ms(4 * i);
    if (GetParam() == TickMode::kParatick && i % 2 == 0) {
      p->on_virtual_tick(count_done());
    } else {
      p->on_physical_tick(count_done());
    }
  }
  const auto& intervals = p->tick_intervals_us();
  EXPECT_EQ(intervals.count(), 5u);
  EXPECT_DOUBLE_EQ(intervals.mean(), 4000.0);
  EXPECT_DOUBLE_EQ(intervals.stddev(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Modes, AllPolicies,
                         ::testing::Values(TickMode::kPeriodic,
                                           TickMode::kDynticksIdle,
                                           TickMode::kFullDynticks,
                                           TickMode::kParatick));

}  // namespace
}  // namespace paratick::guest
