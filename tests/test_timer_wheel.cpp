#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "guest/timer_wheel.hpp"
#include "sim/rng.hpp"

namespace paratick::guest {
namespace {

TEST(TimerWheel, FiresAtExactJiffy) {
  TimerWheel w;
  std::uint64_t fired_at = 0;
  w.add(5, [&] { fired_at = w.current_jiffy(); });
  w.advance(4);
  EXPECT_EQ(fired_at, 0u);
  w.advance(5);
  EXPECT_EQ(fired_at, 5u);
}

TEST(TimerWheel, PastDeadlineFiresNextJiffy) {
  TimerWheel w;
  w.advance(10);
  bool fired = false;
  w.add(3, [&] { fired = true; });
  w.advance(11);
  EXPECT_TRUE(fired);
}

TEST(TimerWheel, CancelPreventsFiring) {
  TimerWheel w;
  bool fired = false;
  const auto id = w.add(5, [&] { fired = true; });
  EXPECT_EQ(w.pending_count(), 1u);
  EXPECT_TRUE(w.cancel(id));
  EXPECT_EQ(w.pending_count(), 0u);
  w.advance(10);
  EXPECT_FALSE(fired);
  EXPECT_FALSE(w.cancel(id));
}

TEST(TimerWheel, MultipleTimersSameJiffyAllFire) {
  TimerWheel w;
  int fired = 0;
  for (int i = 0; i < 7; ++i) w.add(3, [&] { ++fired; });
  w.advance(3);
  EXPECT_EQ(fired, 7);
}

TEST(TimerWheel, CascadeAcrossLevelBoundary) {
  TimerWheel w;
  // 100 > 64: parks in level 1, must cascade into level 0 and fire at 100.
  std::uint64_t fired_at = 0;
  w.add(100, [&] { fired_at = w.current_jiffy(); });
  w.advance(99);
  EXPECT_EQ(fired_at, 0u);
  w.advance(100);
  EXPECT_EQ(fired_at, 100u);
}

TEST(TimerWheel, DeepLevelTimerFiresOnTime) {
  TimerWheel w;
  std::uint64_t fired_at = 0;
  w.add(300'000, [&] { fired_at = w.current_jiffy(); });  // level 3 territory
  w.advance(300'000);
  EXPECT_EQ(fired_at, 300'000u);
}

TEST(TimerWheel, NextExpiryFindsEarliest) {
  TimerWheel w;
  w.add(50, [] {});
  w.add(7, [] {});
  w.add(900, [] {});
  ASSERT_TRUE(w.next_expiry().has_value());
  EXPECT_EQ(*w.next_expiry(), 7u);
}

TEST(TimerWheel, NextExpiryEmptyIsNullopt) {
  TimerWheel w;
  EXPECT_FALSE(w.next_expiry().has_value());
}

TEST(TimerWheel, NextExpiryIgnoresCancelled) {
  TimerWheel w;
  const auto id = w.add(3, [] {});
  w.add(9, [] {});
  w.cancel(id);
  EXPECT_EQ(*w.next_expiry(), 9u);
}

TEST(TimerWheel, CallbackMayRearm) {
  TimerWheel w;
  int fires = 0;
  std::function<void()> rearm = [&] {
    if (++fires < 3) w.add(w.current_jiffy() + 10, rearm);
  };
  w.add(10, rearm);
  w.advance(100);
  EXPECT_EQ(fires, 3);
}

TEST(TimerWheel, FiredCountAccumulates) {
  TimerWheel w;
  for (std::uint64_t i = 1; i <= 5; ++i) w.add(i, [] {});
  w.advance(10);
  EXPECT_EQ(w.fired_count(), 5u);
}

TEST(TimerWheel, HorizonClampParksBeyondTimersAtHorizon) {
  TimerWheel w;
  w.add(std::uint64_t{1} << 40, [] {});  // far beyond the wheel horizon
  ASSERT_TRUE(w.next_expiry().has_value());
  // Clamped into the top level: expiry within the wheel's reach, not lost.
  EXPECT_LE(*w.next_expiry(), std::uint64_t{1} << 30);
  EXPECT_GE(*w.next_expiry(), std::uint64_t{1} << 24);
  EXPECT_EQ(w.pending_count(), 1u);
}

TEST(TimerWheel, CancelAcrossFastForwardGapLeavesNothingStranded) {
  // Regression: cancelled entries used to be left as tombstones; the
  // live_ == 0 fast-forward in advance() then jumped past their slots and
  // they were never purged, growing the wheel without bound on long-idle
  // guests. Cancel now erases eagerly.
  TimerWheel w;
  const auto id = w.add(100, [] {});
  EXPECT_TRUE(w.cancel(id));
  EXPECT_EQ(w.pending_count(), 0u);
  EXPECT_EQ(w.allocated_entries(), 0u);

  w.advance(std::uint64_t{1} << 20);  // fast-forward across the gap
  EXPECT_EQ(w.allocated_entries(), 0u);
  EXPECT_FALSE(w.next_expiry().has_value());

  // The wheel still works normally after the jump.
  bool fired = false;
  w.add((std::uint64_t{1} << 20) + 3, [&] { fired = true; });
  w.advance((std::uint64_t{1} << 20) + 3);
  EXPECT_TRUE(fired);
}

TEST(TimerWheel, RepeatedAddCancelStaysBounded) {
  TimerWheel w;
  for (int round = 0; round < 1000; ++round) {
    const auto now = w.current_jiffy();
    const auto id = w.add(now + 1000, [] {});
    EXPECT_TRUE(w.cancel(id));
    w.advance(now + 5000);  // fast-forward: wheel is empty every round
    EXPECT_EQ(w.allocated_entries(), 0u);
  }
}

TEST(TimerWheel, CancelledTimerNeverFiresAfterCascade) {
  TimerWheel w;
  bool fired = false;
  const auto id = w.add(100, [&] { fired = true; });
  w.add(200, [] {});  // keeps live_ > 0 so no fast-forward
  w.advance(50);
  EXPECT_TRUE(w.cancel(id));
  w.advance(300);
  EXPECT_FALSE(fired);
  EXPECT_EQ(w.allocated_entries(), 0u);
}

TEST(TimerWheel, CallbackCanCancelSameJiffySibling) {
  TimerWheel w;
  bool sibling_fired = false;
  TimerWheel::TimerId sibling = 0;
  w.add(5, [&] { EXPECT_TRUE(w.cancel(sibling)); });
  sibling = w.add(5, [&] { sibling_fired = true; });
  w.advance(5);
  EXPECT_FALSE(sibling_fired);
  EXPECT_EQ(w.pending_count(), 0u);
  EXPECT_EQ(w.allocated_entries(), 0u);
}

TEST(TimerWheel, EntryDueExactlyOnLevelBoundary) {
  // 64 = the level-0/level-1 boundary; 4096 = the level-1/level-2 boundary.
  // Both must fire exactly on time via the cascade's min_expiry = now_ path.
  for (const std::uint64_t deadline :
       {std::uint64_t{64}, std::uint64_t{4096}, std::uint64_t{4096 * 64}}) {
    TimerWheel w;
    std::uint64_t fired_at = 0;
    w.add(deadline, [&] { fired_at = w.current_jiffy(); });
    w.advance(deadline - 1);
    EXPECT_EQ(fired_at, 0u) << "deadline " << deadline;
    w.advance(deadline);
    EXPECT_EQ(fired_at, deadline) << "deadline " << deadline;
  }
}

TEST(TimerWheel, HorizonClampedTimerCancelsInO1) {
  TimerWheel w;
  const auto id = w.add(std::uint64_t{1} << 40, [] {});  // clamped to horizon
  EXPECT_EQ(w.allocated_entries(), 1u);
  EXPECT_TRUE(w.cancel(id));
  EXPECT_EQ(w.allocated_entries(), 0u);
  w.advance(std::uint64_t{1} << 31);  // past the clamped expiry: nothing fires
  EXPECT_EQ(w.fired_count(), 0u);
}

TEST(TimerWheel, FastForwardOverEmptyWheel) {
  TimerWheel w;
  w.advance(std::uint64_t{1} << 32);  // must be instant, not per-jiffy
  EXPECT_EQ(w.current_jiffy(), std::uint64_t{1} << 32);
  bool fired = false;
  w.add((std::uint64_t{1} << 32) + 5, [&] { fired = true; });
  w.advance((std::uint64_t{1} << 32) + 10);
  EXPECT_TRUE(fired);
}

TEST(TimerWheel, NextExpiryHintMatchesScanAfterCascade) {
  // The per-level expiry hints must survive cascading: a level-1 entry that
  // cascades into level 0 moves between hint maps.
  TimerWheel w;
  w.add(100, [] {});
  w.add(70, [] {});
  w.advance(66);  // forces a level-1 -> level-0 cascade
  ASSERT_TRUE(w.next_expiry().has_value());
  EXPECT_EQ(*w.next_expiry(), *w.next_expiry_scan());
  EXPECT_EQ(*w.next_expiry(), 70u);
}

// Regression for the O(levels) next_expiry hint: drive the wheel through a
// random add/cancel/advance workload and require the hint to agree with a
// brute-force slot scan after every mutation.
class TimerWheelHintProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimerWheelHintProperty, HintEqualsBruteForceScan) {
  TimerWheel w;
  sim::Rng rng(GetParam());
  std::vector<TimerWheel::TimerId> live;

  const auto check = [&] {
    const auto hint = w.next_expiry();
    const auto scan = w.next_expiry_scan();
    ASSERT_EQ(hint.has_value(), scan.has_value());
    if (hint) {
      EXPECT_EQ(*hint, *scan);
    }
  };

  for (int step = 0; step < 1000; ++step) {
    const std::int64_t op = rng.uniform_int(0, 9);
    if (op < 5) {  // add, spanning all levels plus the horizon clamp
      const std::uint64_t horizon = rng.uniform_int(0, 1) == 0
                                        ? 5'000
                                        : (std::uint64_t{1} << 34);
      const auto deadline =
          w.current_jiffy() + static_cast<std::uint64_t>(rng.uniform_int(
                                  1, static_cast<std::int64_t>(horizon)));
      live.push_back(w.add(deadline, [] {}));
    } else if (op < 8 && !live.empty()) {  // cancel a random live timer
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      w.cancel(live[idx]);  // may already have fired: both outcomes fine
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {  // advance, occasionally far enough to cascade upper levels
      const std::int64_t jump = op == 9 ? rng.uniform_int(60, 4'000)
                                        : rng.uniform_int(1, 70);
      w.advance(w.current_jiffy() + static_cast<std::uint64_t>(jump));
    }
    check();
  }
  // Drain: cancel whatever is still pending (some ids have already fired;
  // cancel returning false is fine) and re-check the empty wheel.
  for (const auto id : live) w.cancel(id);
  check();
  EXPECT_FALSE(w.next_expiry().has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimerWheelHintProperty,
                         ::testing::Values(11u, 42u, 1234u, 777u));

// Property sweep: random timers always fire, in a jiffy no earlier than
// requested (and exactly on time within the wheel horizon).
class TimerWheelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimerWheelProperty, RandomTimersFireOnTime) {
  TimerWheel w;
  sim::Rng rng(GetParam());
  struct Expect {
    std::uint64_t deadline;
    bool fired = false;
  };
  std::vector<Expect> timers(200);
  for (auto& t : timers) {
    t.deadline = static_cast<std::uint64_t>(rng.uniform_int(1, 200'000));
    w.add(t.deadline, [&w, &t] {
      t.fired = true;
      EXPECT_EQ(w.current_jiffy(), t.deadline);
    });
  }
  w.advance(250'000);
  for (const auto& t : timers) EXPECT_TRUE(t.fired);
  EXPECT_EQ(w.pending_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimerWheelProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

}  // namespace
}  // namespace paratick::guest
