#include <gtest/gtest.h>

#include "core/system.hpp"
#include "hv/trace.hpp"
#include "workload/micro.hpp"

namespace paratick::hv {
namespace {

TEST(Tracer, DisabledRecordsNothing) {
  Tracer t;
  t.record(sim::SimTime::us(1), 0, TraceKind::kExit, 0);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.total_recorded(), 0u);
}

TEST(Tracer, RecordsWhenEnabled) {
  Tracer t;
  t.set_enabled(true);
  t.record(sim::SimTime::us(1), 3, TraceKind::kExit,
           static_cast<std::uint64_t>(hw::ExitCause::kHalt));
  t.record(sim::SimTime::us(2), 3, TraceKind::kEntry, 0);
  ASSERT_EQ(t.size(), 2u);
  const auto events = t.chronological();
  EXPECT_EQ(events[0].kind, TraceKind::kExit);
  EXPECT_EQ(events[1].kind, TraceKind::kEntry);
  EXPECT_EQ(events[0].vcpu, 3u);
}

TEST(Tracer, RingKeepsNewestWhenFull) {
  Tracer t(4);
  t.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    t.record(sim::SimTime::us(i), 0, TraceKind::kEntry,
             static_cast<std::uint64_t>(i));
  }
  EXPECT_TRUE(t.wrapped());
  EXPECT_EQ(t.total_recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);  // 10 recorded, capacity 4
  const auto events = t.chronological();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().arg, 6u);  // oldest surviving
  EXPECT_EQ(events.back().arg, 9u);   // newest
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at, events[i].at);
  }
}

TEST(Tracer, CsvHasHeaderAndRows) {
  Tracer t;
  t.set_enabled(true);
  t.record(sim::SimTime::us(5), 1, TraceKind::kExit,
           static_cast<std::uint64_t>(hw::ExitCause::kGuestTimerArm));
  t.record(sim::SimTime::us(6), 1, TraceKind::kInjection, 236);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("time_us,vcpu,kind,detail"), std::string::npos);
  EXPECT_NE(csv.find("guest-timer-arm"), std::string::npos);
  EXPECT_NE(csv.find("vector 236"), std::string::npos);
}

TEST(Tracer, CsvReportsRingWrapDrops) {
  Tracer t(4);
  t.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    t.record(sim::SimTime::us(i), 0, TraceKind::kEntry,
             static_cast<std::uint64_t>(i));
  }
  const std::string csv = t.to_csv();
  // A wrapped export must say so up front: silently presenting the newest
  // window as "the trace" is how truncated evidence gets misread.
  EXPECT_EQ(csv.rfind("# dropped 6 of 10 events (ring wrapped)\n", 0), 0u);
  EXPECT_NE(csv.find("time_us,vcpu,kind,detail"), std::string::npos);

  // An unwrapped trace stays clean — no comment header.
  Tracer small(16);
  small.set_enabled(true);
  small.record(sim::SimTime::us(1), 0, TraceKind::kEntry, 0);
  EXPECT_EQ(small.dropped(), 0u);
  EXPECT_EQ(small.to_csv().rfind("time_us,", 0), 0u);
}

TEST(Tracer, ClearResets) {
  Tracer t(2);
  t.set_enabled(true);
  for (int i = 0; i < 5; ++i) t.record(sim::SimTime::us(i), 0, TraceKind::kHalt, 0);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.wrapped());
  EXPECT_EQ(t.total_recorded(), 0u);
}

TEST(Tracer, FullSystemTraceTellsTheTickStory) {
  core::SystemSpec spec;
  spec.machine = hw::MachineSpec::small(1);
  spec.host.trace = true;
  spec.max_duration = sim::SimTime::ms(20);
  core::VmSpec vm;
  vm.vcpus = 1;
  vm.guest.tick_mode = guest::TickMode::kPeriodic;
  spec.vms.push_back(std::move(vm));
  core::System system(std::move(spec));
  system.run();

  const auto events = system.kvm().tracer().chronological();
  ASSERT_GT(events.size(), 20u);
  // The periodic idle VM cycles: wake -> entry -> inject(timer) ->
  // exit(arm) -> entry -> halt -> ...
  int injections = 0, halts = 0, wakes = 0;
  for (const auto& e : events) {
    injections += e.kind == TraceKind::kInjection ? 1 : 0;
    halts += e.kind == TraceKind::kHalt ? 1 : 0;
    wakes += e.kind == TraceKind::kWake ? 1 : 0;
  }
  // ~5 ticks in 20 ms at 250 Hz.
  EXPECT_NEAR(injections, 5, 2);
  EXPECT_NEAR(halts, 6, 2);
  EXPECT_NEAR(wakes, 5, 2);
}

}  // namespace
}  // namespace paratick::hv
