#include <gtest/gtest.h>

#include "hw/vmx.hpp"

namespace paratick::hw {
namespace {

TEST(Vmx, EveryCauseHasNameAndReason) {
  for (std::size_t c = 0; c < kExitCauseCount; ++c) {
    const auto cause = static_cast<ExitCause>(c);
    EXPECT_NE(to_string(cause), "?");
    EXPECT_LT(static_cast<std::size_t>(reason_for(cause)), kExitReasonCount);
  }
}

TEST(Vmx, EveryReasonHasName) {
  for (std::size_t r = 0; r < kExitReasonCount; ++r) {
    EXPECT_NE(to_string(static_cast<ExitReason>(r)), "?");
  }
}

TEST(Vmx, TimerRelatedClassificationMatchesPaper) {
  // §6.1: "arming the guest tick timer, delivering host ticks and
  // delivering guest ticks" are the timer-related exits.
  EXPECT_TRUE(is_timer_related(ExitCause::kGuestTimerArm));
  EXPECT_TRUE(is_timer_related(ExitCause::kGuestTimerFire));
  EXPECT_TRUE(is_timer_related(ExitCause::kGuestTimerHostFire));
  EXPECT_TRUE(is_timer_related(ExitCause::kHostTick));
  EXPECT_TRUE(is_timer_related(ExitCause::kAuxParatickTimer));

  EXPECT_FALSE(is_timer_related(ExitCause::kHalt));
  EXPECT_FALSE(is_timer_related(ExitCause::kIoKick));
  EXPECT_FALSE(is_timer_related(ExitCause::kIoAck));
  EXPECT_FALSE(is_timer_related(ExitCause::kDeviceCompletion));
  EXPECT_FALSE(is_timer_related(ExitCause::kIpiSend));
  EXPECT_FALSE(is_timer_related(ExitCause::kWakeIpi));
  EXPECT_FALSE(is_timer_related(ExitCause::kHypercall));
  EXPECT_FALSE(is_timer_related(ExitCause::kPauseLoop));
  EXPECT_FALSE(is_timer_related(ExitCause::kBackground));
}

TEST(Vmx, ReasonMappingMatchesHardwareSemantics) {
  // The guest arms its timer through an MSR write...
  EXPECT_EQ(reason_for(ExitCause::kGuestTimerArm), ExitReason::kMsrWrite);
  // ...KVM delivers guest ticks via the preemption timer (§3)...
  EXPECT_EQ(reason_for(ExitCause::kGuestTimerFire), ExitReason::kPreemptionTimer);
  EXPECT_EQ(reason_for(ExitCause::kAuxParatickTimer), ExitReason::kPreemptionTimer);
  // ...and host ticks arrive as external interrupts.
  EXPECT_EQ(reason_for(ExitCause::kHostTick), ExitReason::kExternalInterrupt);
  EXPECT_EQ(reason_for(ExitCause::kHalt), ExitReason::kHlt);
  EXPECT_EQ(reason_for(ExitCause::kIoKick), ExitReason::kIoInstruction);
  EXPECT_EQ(reason_for(ExitCause::kHypercall), ExitReason::kHypercall);
  EXPECT_EQ(reason_for(ExitCause::kPauseLoop), ExitReason::kPause);
}

}  // namespace
}  // namespace paratick::hw
