// Workload-layer tests: the Program op language and interpreter, PARSEC
// profiles, the fio generator and the micro-workloads.
#include <gtest/gtest.h>

#include "expect_error.hpp"

#include "core/system.hpp"
#include "workload/fio.hpp"
#include "workload/micro.hpp"
#include "workload/parsec.hpp"
#include "workload/program.hpp"

namespace paratick::workload {
namespace {

using sim::SimTime;

metrics::RunResult run_program(Program prog, int cpus = 1, bool disk = false) {
  core::SystemSpec spec;
  spec.machine = hw::MachineSpec::small(static_cast<std::uint32_t>(cpus));
  spec.max_duration = SimTime::sec(10);
  core::VmSpec vm;
  vm.vcpus = cpus;
  vm.attach_disk = disk;
  vm.setup = [&prog](guest::GuestKernel& k) { k.add_task(make_task_body(prog)); };
  spec.vms.push_back(std::move(vm));
  core::System system(std::move(spec));
  return system.run();
}

TEST(Program, BuilderAccumulatesOps) {
  Program p;
  p.compute(100).barrier(1).lock(2).unlock(2).sleep(SimTime::us(5)).fault();
  EXPECT_EQ(p.ops().size(), 6u);
  EXPECT_EQ(p.ops()[0].kind, Op::Kind::kCompute);
  EXPECT_EQ(p.ops()[1].sync_id, 1);
  EXPECT_EQ(p.repeat_count(), 1);
  p.repeat(7);
  EXPECT_EQ(p.repeat_count(), 7);
}

TEST(Program, MeanComputeSumsComputeKinds) {
  Program p;
  p.compute(100).compute_exp(200).compute_norm(300, 0.1).barrier(0);
  EXPECT_EQ(p.mean_compute_cycles_per_iteration(), 600);
}

TEST(Program, InterpreterRunsRepeatIterations) {
  Program p;
  p.compute(10'000).repeat(25);
  const auto r = run_program(p);
  ASSERT_TRUE(r.completion_time().has_value());
  // 25 * 10k cycles = 250k cycles ≈ 125 us plus kernel overhead.
  EXPECT_GE(r.completion_time()->microseconds(), 125.0);
}

TEST(Program, ProbabilityGatedOpsFireProportionally) {
  Program p;
  p.compute(1'000).fault(0.25).repeat(4000);
  const auto r = run_program(p);
  const auto faults =
      r.exits_by_cause[static_cast<std::size_t>(hw::ExitCause::kBackground)];
  EXPECT_NEAR(static_cast<double>(faults), 1000.0, 120.0);
}

TEST(ProgramDeath, EmptyProgramRejected) {
  EXPECT_SIM_ERROR((void)make_task_body(Program{}), "empty workload program");
}

TEST(Parsec, SuiteHasThirteenDistinctBenchmarks) {
  const auto suite = parsec_suite();
  EXPECT_EQ(suite.size(), 13u);
  for (std::size_t i = 0; i < suite.size(); ++i) {
    for (std::size_t j = i + 1; j < suite.size(); ++j) {
      EXPECT_NE(suite[i].name, suite[j].name);
    }
  }
}

TEST(Parsec, LookupByName) {
  EXPECT_EQ(parsec_profile("dedup").name, "dedup");
  EXPECT_TRUE(parsec_profile("dedup").pipeline);
  EXPECT_FALSE(parsec_profile("blackscholes").pipeline);
}

TEST(ParsecDeath, UnknownBenchmarkAborts) {
  EXPECT_SIM_ERROR((void)parsec_profile("doom3"), "unknown PARSEC benchmark");
}

TEST(Parsec, SequentialProgramHasNoBlockingSync) {
  for (const auto& profile : parsec_suite()) {
    const Program p = make_parsec_program(profile, 1, 0);
    for (const auto& op : p.ops()) {
      EXPECT_NE(op.kind, Op::Kind::kSemWait);
      EXPECT_NE(op.kind, Op::Kind::kSemPost);
    }
  }
}

TEST(Parsec, PipelineRolesDiffer) {
  const auto& dedup = parsec_profile("dedup");
  const Program producer = make_parsec_program(dedup, 4, 0);
  const Program consumer = make_parsec_program(dedup, 4, 1);
  bool producer_posts = false, consumer_waits = false;
  for (const auto& op : producer.ops()) producer_posts |= op.kind == Op::Kind::kSemPost;
  for (const auto& op : consumer.ops()) consumer_waits |= op.kind == Op::Kind::kSemWait;
  EXPECT_TRUE(producer_posts);
  EXPECT_TRUE(consumer_waits);
}

TEST(Parsec, GroupsUseDistinctSemaphores) {
  const auto& dedup = parsec_profile("dedup");
  const Program g0 = make_parsec_program(dedup, 8, 0);
  const Program g1 = make_parsec_program(dedup, 8, 4);
  int s0 = -1, s1 = -1;
  for (const auto& op : g0.ops()) {
    if (op.kind == Op::Kind::kSemPost) s0 = op.sync_id;
  }
  for (const auto& op : g1.ops()) {
    if (op.kind == Op::Kind::kSemPost) s1 = op.sync_id;
  }
  EXPECT_EQ(s0, 0);
  EXPECT_EQ(s1, 1);
}

TEST(Parsec, InstallRunsToCompletionSequential) {
  core::SystemSpec spec;
  spec.machine = hw::MachineSpec::small(1);
  spec.max_duration = SimTime::sec(30);
  core::VmSpec vm;
  vm.vcpus = 1;
  vm.attach_disk = true;
  vm.setup = [](guest::GuestKernel& k) {
    install_parsec(k, parsec_profile("streamcluster"), 1);
  };
  spec.vms.push_back(std::move(vm));
  core::System system(std::move(spec));
  const auto r = system.run();
  EXPECT_TRUE(r.completion_time().has_value());
  EXPECT_EQ(system.kernel(0).tasks_done(), 1);
}

TEST(Parsec, BarrierImbalanceCreatesIdleness) {
  core::SystemSpec spec;
  spec.machine = hw::MachineSpec::small(4);
  spec.max_duration = SimTime::sec(30);
  core::VmSpec vm;
  vm.vcpus = 4;
  vm.attach_disk = true;
  vm.setup = [](guest::GuestKernel& k) {
    install_parsec(k, parsec_profile("fluidanimate"), 4);
  };
  spec.vms.push_back(std::move(vm));
  core::System system(std::move(spec));
  const auto r = system.run();
  EXPECT_GT(r.vms[0].task_blocks, 1000u);  // microsecond-scale blocking regime
}

TEST(Fio, CategoriesAndBlockSizesMatchPaper) {
  EXPECT_EQ(fio_categories().size(), 4u);  // seqr, seqwr, rndr, rndwr
  EXPECT_EQ(fio_block_sizes().size(), 7u);
  EXPECT_EQ(fio_block_sizes().front(), 4096u);
  EXPECT_EQ(fio_block_sizes().back(), 262144u);
}

TEST(Fio, ProgramIssuesExactlyOpsRequests) {
  FioSpec spec;
  spec.ops = 37;
  core::SystemSpec sys;
  sys.machine = hw::MachineSpec::small(1);
  sys.max_duration = SimTime::sec(10);
  core::VmSpec vm;
  vm.vcpus = 1;
  vm.attach_disk = true;
  vm.setup = [&spec](guest::GuestKernel& k) { install_fio(k, spec); };
  sys.vms.push_back(std::move(vm));
  core::System system(std::move(sys));
  const auto r = system.run();
  EXPECT_TRUE(r.completion_time().has_value());
  EXPECT_EQ(system.disk(0)->completed_requests(), 37u);
  EXPECT_EQ(r.exits_by_cause[static_cast<std::size_t>(hw::ExitCause::kIoKick)], 37u);
}

TEST(Fio, WritesSlowerThanReads) {
  auto run_cat = [](hw::IoDir dir) {
    FioSpec spec;
    spec.dir = dir;
    spec.ops = 300;
    core::SystemSpec sys;
    sys.machine = hw::MachineSpec::small(1);
    sys.max_duration = SimTime::sec(10);
    core::VmSpec vm;
    vm.vcpus = 1;
    vm.attach_disk = true;
    vm.setup = [&spec](guest::GuestKernel& k) { install_fio(k, spec); };
    sys.vms.push_back(std::move(vm));
    core::System system(std::move(sys));
    return *system.run().completion_time();
  };
  EXPECT_LT(run_cat(hw::IoDir::kRead), run_cat(hw::IoDir::kWrite));
}

TEST(Micro, SyncStormBlocksAtExpectedRate) {
  core::SystemSpec spec;
  spec.machine = hw::MachineSpec::small(4);
  spec.max_duration = SimTime::sec(3);
  core::VmSpec vm;
  vm.vcpus = 4;
  vm.setup = [](guest::GuestKernel& k) {
    SyncStormSpec storm;
    storm.threads = 4;
    storm.sync_rate_hz = 500.0;
    storm.duration = SimTime::sec(1);
    workload::install_sync_storm(k, storm);
  };
  spec.vms.push_back(std::move(vm));
  core::System system(std::move(spec));
  const auto r = system.run();
  // ~500 barriers, 3 waiters each -> ~1500 blocks (±contention noise).
  EXPECT_NEAR(static_cast<double>(r.vms[0].task_blocks), 1500.0, 300.0);
}

TEST(Micro, TickStormChurnsTimers) {
  core::SystemSpec spec;
  spec.machine = hw::MachineSpec::small(1);
  spec.max_duration = SimTime::sec(5);
  core::VmSpec vm;
  vm.vcpus = 1;
  vm.setup = [](guest::GuestKernel& k) {
    TickStormSpec storm;
    storm.iterations = 1000;
    storm.sleep_interval = SimTime::us(200);
    install_tick_storm(k, storm);
  };
  spec.vms.push_back(std::move(vm));
  core::System system(std::move(spec));
  const auto r = system.run();
  ASSERT_TRUE(r.completion_time().has_value());
  EXPECT_EQ(r.vms[0].task_blocks, 1000u);
}

TEST(Micro, PureComputeNeverBlocks) {
  core::SystemSpec spec;
  spec.machine = hw::MachineSpec::small(1);
  spec.max_duration = SimTime::sec(5);
  core::VmSpec vm;
  vm.vcpus = 1;
  vm.setup = [](guest::GuestKernel& k) {
    PureComputeSpec pc;
    pc.total_cycles = 50'000'000;
    install_pure_compute(k, pc);
  };
  spec.vms.push_back(std::move(vm));
  core::System system(std::move(spec));
  const auto r = system.run();
  EXPECT_EQ(r.vms[0].task_blocks, 0u);
  ASSERT_TRUE(r.completion_time().has_value());
  EXPECT_NEAR(r.completion_time()->milliseconds(), 25.0, 2.0);  // 50M @ 2 GHz
}

}  // namespace
}  // namespace paratick::workload
